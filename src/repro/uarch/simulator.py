"""Unified simulation facade.

:class:`Simulator` hides the backend choice:

* ``backend="interval"`` — the fast vectorized first-order model
  (:mod:`repro.uarch.interval_model`), used for design-space sweeps;
* ``backend="detailed"`` — the cycle-level out-of-order pipeline
  (:mod:`repro.uarch.detailed`), used for mechanism studies and for
  validating the interval model.

Both produce a :class:`SimulationResult` holding the per-interval
CPI / power / AVF / IQ-AVF traces the predictive models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError
from repro.uarch.params import MachineConfig
from repro.workloads.phases import WorkloadModel
from repro.workloads.spec2000 import get_benchmark

#: Trace domains every backend must produce.
DOMAINS = ("cpi", "power", "avf", "iq_avf")

#: Supported backends.
BACKENDS = ("interval", "detailed")


@dataclass(frozen=True)
class SimulationResult:
    """Per-interval workload dynamics for one (benchmark, config) run."""

    benchmark: str
    config: MachineConfig
    n_samples: int
    backend: str
    traces: Dict[str, np.ndarray]
    components: Dict[str, np.ndarray] = field(default_factory=dict)

    def trace(self, domain: str) -> np.ndarray:
        """The dynamics trace for one domain ("cpi", "power", ...).

        The derived ``"ipc"`` domain is inf-free: a zero-CPI interval
        (possible in artificial traces) maps to 0 IPC instead of
        overflowing to infinity.
        """
        if domain == "ipc":
            cpi = self.traces["cpi"]
            return np.divide(1.0, cpi, out=np.zeros_like(cpi, dtype=float),
                             where=cpi != 0)
        if domain not in self.traces:
            raise SimulationError(
                f"unknown domain {domain!r}; have {sorted(self.traces)}"
            )
        return self.traces[domain]

    def aggregate(self, domain: str) -> float:
        """Whole-run mean of a domain (what global models predict)."""
        return float(np.mean(self.trace(domain)))

    def detach(self) -> "SimulationResult":
        """A result whose arrays own their memory.

        Results delivered over the shared-memory transport
        (:mod:`repro.engine.shm`) hold read-only views into a
        batch-wide arena; detaching copies them into private, writable
        arrays so the arena can be reclaimed (and so long-lived stores
        such as the in-memory result cache never pin a whole batch).
        Results that already own their arrays are returned unchanged.
        """
        arrays = list(self.traces.values()) + list(self.components.values())
        if all(arr.base is None for arr in arrays):
            return self
        return SimulationResult(
            benchmark=self.benchmark, config=self.config,
            n_samples=self.n_samples, backend=self.backend,
            traces={d: np.array(a) for d, a in self.traces.items()},
            components={d: np.array(a) for d, a in self.components.items()},
        )


def interval_result_to_simulation(res) -> SimulationResult:
    """Wrap one interval-kernel result as a :class:`SimulationResult`.

    ``res`` is an :class:`~repro.uarch.interval_model.IntervalSimResult`
    — either from a scalar :func:`~repro.uarch.interval_model.\
simulate_interval` call or one row of a batched
    :class:`~repro.uarch.interval_model.IntervalBatchResult` (whose
    arrays are views into the batch matrices; :meth:`SimulationResult.\
detach` copies them when a consumer needs owning arrays).
    """
    return SimulationResult(
        benchmark=res.benchmark, config=res.config,
        n_samples=res.n_samples, backend="interval",
        traces={"cpi": res.cpi, "power": res.power,
                "avf": res.avf, "iq_avf": res.iq_avf},
        components=res.components,
    )


class Simulator:
    """Runs workloads over machine configurations.

    Parameters
    ----------
    backend:
        ``"interval"`` (default, fast) or ``"detailed"`` (cycle-level).
    noise:
        Whether the interval backend adds its deterministic measurement
        texture; ignored by the detailed backend (whose nondeterminism is
        organic).

    Examples
    --------
    >>> from repro.uarch.params import baseline_config
    >>> sim = Simulator()
    >>> result = sim.run("gcc", baseline_config(), n_samples=128)
    >>> result.trace("cpi").shape
    (128,)
    """

    def __init__(self, backend: str = "interval", noise: bool = True):
        if backend not in BACKENDS:
            raise SimulationError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        self.backend = backend
        self.noise = noise

    def run(self, workload: Union[str, WorkloadModel], config: MachineConfig,
            n_samples: int = 128,
            instructions_per_sample: int = 1000,
            checkpoint_every: Optional[int] = None,
            checkpoint_path=None) -> SimulationResult:
        """Simulate one (workload, configuration) pair.

        Parameters
        ----------
        workload:
            Benchmark name or a :class:`WorkloadModel`.
        config:
            Machine configuration (with or without DVM enabled).
        n_samples:
            Trace resolution; the paper's default is 128.
        instructions_per_sample:
            Detailed backend only: synthetic instructions simulated per
            trace interval (the paper uses 200M/128 per interval; the
            synthetic traces need far fewer for stable statistics).
        checkpoint_every, checkpoint_path:
            Detailed backend only: periodic mid-run snapshots enabling
            bit-identical resume after a crash (see
            :meth:`repro.uarch.detailed.DetailedSimulator.run`).
            Ignored by the interval backend, whose runs are too cheap
            to checkpoint.
        """
        if isinstance(workload, str):
            workload = get_benchmark(workload)
        if self.backend == "interval":
            from repro.uarch.interval_model import simulate_interval

            res = simulate_interval(workload, config, n_samples,
                                    noise=self.noise)
            return interval_result_to_simulation(res)
        from repro.uarch.detailed import DetailedSimulator

        detailed = DetailedSimulator(config)
        return detailed.run(workload, n_samples=n_samples,
                            instructions_per_sample=instructions_per_sample,
                            checkpoint_every=checkpoint_every,
                            checkpoint_path=checkpoint_path)

    # ------------------------------------------------------------------
    def jobs(self, workload: Union[str, WorkloadModel],
             configs: Sequence[MachineConfig],
             n_samples: int = 128,
             instructions_per_sample: int = 1000) -> List["SimJob"]:
        """Build engine jobs carrying this simulator's backend settings.

        Returns one :class:`~repro.engine.jobs.SimJob` per configuration.
        """
        from repro.engine.jobs import make_jobs

        return make_jobs(workload, configs, backend=self.backend,
                         n_samples=n_samples,
                         instructions_per_sample=instructions_per_sample,
                         noise=self.noise)

    def run_batch(self, jobs: Sequence["SimJob"],
                  executor=None) -> List[SimulationResult]:
        """Run a batch of engine jobs *under this simulator's settings*.

        Each job is re-stamped with this simulator's backend and noise
        options (so ``Simulator(backend="detailed").run_batch(jobs)``
        really runs the detailed model), then executed in job order.

        Parameters
        ----------
        jobs:
            :class:`~repro.engine.jobs.SimJob` sequence; see
            :meth:`jobs` to build one from configuration lists.
        executor:
            An :class:`~repro.engine.executor.Executor`; defaults to the
            in-process :class:`~repro.engine.executor.LocalExecutor`.
        """
        from dataclasses import replace

        from repro.engine.executor import LocalExecutor

        stamped = [replace(job, backend=self.backend, noise=self.noise)
                   for job in jobs]
        executor = executor or LocalExecutor()
        return executor.run_batch(stamped)
