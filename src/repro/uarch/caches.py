"""Set-associative caches and TLBs for the detailed simulator.

True LRU replacement, physically-indexed, with a two-level hierarchy
helper (:class:`CacheHierarchy`) returning load-to-use latencies the
pipeline charges to each access.  An analytical miss-curve counterpart
for sweeps lives in :mod:`repro.uarch.interval_model`.

Each set is an :class:`~collections.OrderedDict` in LRU order (oldest
first), so an access is one hash lookup plus a recency move — O(1) per
instruction — instead of a linear scan over the ways.  The detailed
backend charges every load, store and fetch through here, so that
constant factor is the hot path of the whole cycle-level simulator.
The hit/miss stream is exactly that of a per-way true-LRU scan.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro._validation import is_power_of_two
from repro.uarch.params import MachineConfig


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Parameters
    ----------
    size_kb:
        Total capacity in KB (power-of-two sets required after dividing
        by associativity and line size).
    assoc:
        Number of ways.
    line_bytes:
        Line size in bytes.
    name:
        Used in error messages and stat reporting.
    """

    def __init__(self, size_kb: int, assoc: int, line_bytes: int,
                 name: str = "cache"):
        if size_kb <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ConfigurationError(
                f"{name}: size/assoc/line must be positive"
            )
        total_lines = size_kb * 1024 // line_bytes
        if total_lines < assoc:
            raise ConfigurationError(
                f"{name}: capacity {size_kb}KB too small for "
                f"{assoc}-way associativity at {line_bytes}B lines"
            )
        n_sets = total_lines // assoc
        if not is_power_of_two(n_sets):
            raise ConfigurationError(
                f"{name}: set count {n_sets} is not a power of two"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        # One ordered dict per set, keyed by full line id (sets are
        # distinguished by index), oldest-used entry first.
        self._sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(n_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access a byte address; returns True on hit.  Fills on miss."""
        line = address >> self._line_shift
        ways = self._sets[line & self._set_mask]
        if line in ways:
            ways.move_to_end(line)
            self.hits += 1
            return True
        # Miss: evict the least-recently-used way when the set is full.
        if len(ways) >= self.assoc:
            ways.popitem(last=False)
        ways[line] = None
        self.misses += 1
        return False

    def contains(self, address: int) -> bool:
        """Non-mutating lookup (no fill, no LRU update)."""
        line = address >> self._line_shift
        return line in self._sets[line & self._set_mask]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss rate so far (0 when never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (contents are preserved)."""
        self.hits = 0
        self.misses = 0

    def lru_table(self) -> np.ndarray:
        """Contents as a ``(n_sets, assoc)`` int64 array of line ids.

        Each row lists the set's resident lines in LRU order (oldest
        first), ``-1``-padded at the end — the canonical snapshot form
        shared with the array kernel's tag/stamp representation.
        """
        table = np.full((self.n_sets, self.assoc), -1, dtype=np.int64)
        for index, ways in enumerate(self._sets):
            for way, line in enumerate(ways):
                table[index, way] = line
        return table

    def load_lru_table(self, table: np.ndarray) -> None:
        """Replace the contents from a :meth:`lru_table` array."""
        table = np.asarray(table)
        if table.shape != (self.n_sets, self.assoc):
            raise ConfigurationError(
                f"{self.name}: snapshot shape {table.shape} does not match "
                f"({self.n_sets}, {self.assoc})"
            )
        for index in range(self.n_sets):
            ways: "OrderedDict[int, None]" = OrderedDict()
            for way in range(self.assoc):
                line = int(table[index, way])
                if line != -1:
                    ways[line] = None
            self._sets[index] = ways


class TLB:
    """A tiny fully-associative-by-hash TLB model (page-grain LRU cache)."""

    def __init__(self, entries: int, page_bytes: int = 4096,
                 name: str = "tlb"):
        if entries <= 0:
            raise ConfigurationError(f"{name}: entries must be positive")
        self.name = name
        self.entries = entries
        self._page_shift = page_bytes.bit_length() - 1
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Translate an address; returns True on TLB hit."""
        page = address >> self._page_shift
        if page in self._resident:
            self._resident.move_to_end(page)
            self.hits += 1
            return True
        if len(self._resident) >= self.entries:
            self._resident.popitem(last=False)
        self._resident[page] = None
        self.misses += 1
        return False

    def lru_pages(self) -> np.ndarray:
        """Resident pages in LRU order (oldest first), ``-1``-padded."""
        pages = np.full(self.entries, -1, dtype=np.int64)
        for slot, page in enumerate(self._resident):
            pages[slot] = page
        return pages

    def load_lru_pages(self, pages: np.ndarray) -> None:
        """Replace the resident set from a :meth:`lru_pages` array."""
        pages = np.asarray(pages)
        if pages.shape != (self.entries,):
            raise ConfigurationError(
                f"{self.name}: snapshot shape {pages.shape} does not match "
                f"({self.entries},)"
            )
        self._resident = OrderedDict(
            (int(page), None) for page in pages if page != -1)


@dataclass
class AccessResult:
    """Latency and hit levels for one memory access."""

    latency: int
    dl1_hit: bool
    l2_hit: bool
    tlb_hit: bool = True

    @property
    def goes_to_memory(self) -> bool:
        return not (self.dl1_hit or self.l2_hit)


class CacheHierarchy:
    """IL1 + DL1 + unified L2 + TLBs wired per a :class:`MachineConfig`."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.il1 = SetAssociativeCache(config.il1_size_kb, config.il1_assoc,
                                       config.il1_line_bytes, "il1")
        self.dl1 = SetAssociativeCache(config.dl1_size_kb, config.dl1_assoc,
                                       config.dl1_line_bytes, "dl1")
        self.l2 = SetAssociativeCache(config.l2_size_kb, config.l2_assoc,
                                      config.l2_line_bytes, "l2")
        self.itlb = TLB(config.itlb_entries, name="itlb")
        self.dtlb = TLB(config.dtlb_entries, name="dtlb")

    def data_access(self, address: int) -> AccessResult:
        """Charge a load/store; returns the latency to first use."""
        cfg = self.config
        tlb_hit = self.dtlb.access(address)
        dl1_hit = self.dl1.access(address)
        if dl1_hit:
            latency = cfg.dl1_latency
            l2_hit = True
        else:
            l2_hit = self.l2.access(address)
            latency = cfg.dl1_latency + (
                cfg.l2_latency if l2_hit
                else cfg.l2_latency + cfg.memory_latency
            )
        if not tlb_hit:
            latency += cfg.tlb_miss_latency
        return AccessResult(latency=latency, dl1_hit=dl1_hit,
                            l2_hit=l2_hit, tlb_hit=tlb_hit)

    def inst_access(self, address: int) -> int:
        """Charge an instruction fetch; returns front-end bubble cycles."""
        cfg = self.config
        tlb_hit = self.itlb.access(address)
        il1_hit = self.il1.access(address)
        bubble = 0
        if not il1_hit:
            bubble = cfg.l2_latency if self.l2.access(address) else (
                cfg.l2_latency + cfg.memory_latency
            )
        if not tlb_hit:
            bubble += cfg.tlb_miss_latency
        return bubble
