"""Set-associative caches and TLBs for the detailed simulator.

True LRU replacement, physically-indexed, with a two-level hierarchy
helper (:class:`CacheHierarchy`) returning load-to-use latencies the
pipeline charges to each access.  An analytical miss-curve counterpart
for sweeps lives in :mod:`repro.uarch.interval_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro._validation import is_power_of_two
from repro.uarch.params import MachineConfig


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Parameters
    ----------
    size_kb:
        Total capacity in KB (power-of-two sets required after dividing
        by associativity and line size).
    assoc:
        Number of ways.
    line_bytes:
        Line size in bytes.
    name:
        Used in error messages and stat reporting.
    """

    def __init__(self, size_kb: int, assoc: int, line_bytes: int,
                 name: str = "cache"):
        if size_kb <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ConfigurationError(
                f"{name}: size/assoc/line must be positive"
            )
        total_lines = size_kb * 1024 // line_bytes
        if total_lines < assoc:
            raise ConfigurationError(
                f"{name}: capacity {size_kb}KB too small for "
                f"{assoc}-way associativity at {line_bytes}B lines"
            )
        n_sets = total_lines // assoc
        if not is_power_of_two(n_sets):
            raise ConfigurationError(
                f"{name}: set count {n_sets} is not a power of two"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        # tags[set, way]; -1 = invalid.  lru[set, way]: higher = newer.
        self._tags = np.full((n_sets, assoc), -1, dtype=np.int64)
        self._lru = np.zeros((n_sets, assoc), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access a byte address; returns True on hit.  Fills on miss."""
        line = address >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> 0  # full line id as tag (sets distinguished by index)
        self._clock += 1
        tags = self._tags[set_idx]
        for way in range(self.assoc):
            if tags[way] == tag:
                self._lru[set_idx, way] = self._clock
                self.hits += 1
                return True
        # Miss: fill LRU way.
        victim = int(np.argmin(self._lru[set_idx]))
        self._tags[set_idx, victim] = tag
        self._lru[set_idx, victim] = self._clock
        self.misses += 1
        return False

    def contains(self, address: int) -> bool:
        """Non-mutating lookup (no fill, no LRU update)."""
        line = address >> self._line_shift
        set_idx = line & self._set_mask
        return bool(np.any(self._tags[set_idx] == line))

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss rate so far (0 when never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (contents are preserved)."""
        self.hits = 0
        self.misses = 0


class TLB:
    """A tiny fully-associative-by-hash TLB model (page-grain LRU cache)."""

    def __init__(self, entries: int, page_bytes: int = 4096,
                 name: str = "tlb"):
        if entries <= 0:
            raise ConfigurationError(f"{name}: entries must be positive")
        self.name = name
        self.entries = entries
        self._page_shift = page_bytes.bit_length() - 1
        self._resident = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Translate an address; returns True on TLB hit."""
        page = address >> self._page_shift
        self._clock += 1
        if page in self._resident:
            self._resident[page] = self._clock
            self.hits += 1
            return True
        if len(self._resident) >= self.entries:
            oldest = min(self._resident, key=self._resident.get)
            del self._resident[oldest]
        self._resident[page] = self._clock
        self.misses += 1
        return False


@dataclass
class AccessResult:
    """Latency and hit levels for one memory access."""

    latency: int
    dl1_hit: bool
    l2_hit: bool
    tlb_hit: bool = True

    @property
    def goes_to_memory(self) -> bool:
        return not (self.dl1_hit or self.l2_hit)


class CacheHierarchy:
    """IL1 + DL1 + unified L2 + TLBs wired per a :class:`MachineConfig`."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.il1 = SetAssociativeCache(config.il1_size_kb, config.il1_assoc,
                                       config.il1_line_bytes, "il1")
        self.dl1 = SetAssociativeCache(config.dl1_size_kb, config.dl1_assoc,
                                       config.dl1_line_bytes, "dl1")
        self.l2 = SetAssociativeCache(config.l2_size_kb, config.l2_assoc,
                                      config.l2_line_bytes, "l2")
        self.itlb = TLB(config.itlb_entries, name="itlb")
        self.dtlb = TLB(config.dtlb_entries, name="dtlb")

    def data_access(self, address: int) -> AccessResult:
        """Charge a load/store; returns the latency to first use."""
        cfg = self.config
        tlb_hit = self.dtlb.access(address)
        dl1_hit = self.dl1.access(address)
        if dl1_hit:
            latency = cfg.dl1_latency
            l2_hit = True
        else:
            l2_hit = self.l2.access(address)
            latency = cfg.dl1_latency + (
                cfg.l2_latency if l2_hit
                else cfg.l2_latency + cfg.memory_latency
            )
        if not tlb_hit:
            latency += cfg.tlb_miss_latency
        return AccessResult(latency=latency, dl1_hit=dl1_hit,
                            l2_hit=l2_hit, tlb_hit=tlb_hit)

    def inst_access(self, address: int) -> int:
        """Charge an instruction fetch; returns front-end bubble cycles."""
        cfg = self.config
        tlb_hit = self.itlb.access(address)
        il1_hit = self.il1.access(address)
        bubble = 0
        if not il1_hit:
            bubble = cfg.l2_latency if self.l2.access(address) else (
                cfg.l2_latency + cfg.memory_latency
            )
        if not tlb_hit:
            bubble += cfg.tlb_miss_latency
        return bubble
