"""Fast first-order superscalar performance model (the sweep backend).

The paper's data comes from ~3,000 detailed simulations (12 benchmarks x
250 configurations).  Detailed cycle-level simulation in Python at that
scale is intractable, so the design-space sweeps run this *interval
model*: a vectorized first-order out-of-order processor model in the
tradition of Karkhanis & Smith's interval analysis — a base steady-state
IPC set by width / inherent ILP / in-flight window, degraded by additive
miss-event penalties (branch mispredictions, IL1 / DL1 / L2 misses) with
window- and MLP-based overlap corrections.

Every quantity is computed per trace sample (the per-phase workload
attributes are already per-sample arrays), so one call produces the
whole 128-sample CPI/power/AVF dynamics for a (workload, configuration)
pair in a few hundred microseconds.

A seeded, deterministic noise texture (see
:class:`~repro.workloads.phases.NoiseModel`) models the simulation
effects a config->trace predictor cannot see, giving prediction error a
realistic floor.

The detailed cycle-level simulator in :mod:`repro.uarch.detailed` is the
reference implementation these first-order equations are validated
against (see ``tests/test_backend_agreement.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro._validation import stable_hash
from repro.errors import SimulationError
from repro.power.wattch import WattchModel
from repro.reliability.avf import AVFModel, structure_capacity_bits
from repro.reliability.dvm import DVMPolicy
from repro.uarch.params import MachineConfig
from repro.workloads.phases import WorkloadModel

#: Miss-curve smoothing (log2-KB units): how sharply an access stream
#: transitions from hitting to missing as its working set crosses the
#: cache capacity.
_DL1_SHARPNESS = 0.7
_L2_SHARPNESS = 0.9
_IL1_SHARPNESS = 0.5

#: IL1 probes per instruction (fetch-block granularity).
_IL1_ACCESS_PER_INST = 0.25

#: Fraction of the issue queue assumed occupied by waiting instructions
#: when sizing the effective window (IQ binds only when small).
_IQ_WAITING_SHARE = 0.45

#: Dispatch inefficiency: achievable throughput as a fraction of width.
_DISPATCH_EFFICIENCY = 0.92

#: Residual overlap of long-latency misses beyond explicit MLP
#: bookkeeping (run-ahead effects, hardware prefetch, write buffering).
_MEMORY_OVERLAP = 0.6


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


@dataclass(frozen=True)
class IntervalSimResult:
    """Per-sample traces produced by one interval-model run."""

    benchmark: str
    config: MachineConfig
    n_samples: int
    cpi: np.ndarray
    power: np.ndarray
    avf: np.ndarray
    iq_avf: np.ndarray
    components: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def ipc(self) -> np.ndarray:
        """Instructions per cycle, the reciprocal CPI trace."""
        return 1.0 / self.cpi

    def trace(self, domain: str) -> np.ndarray:
        """Trace lookup by domain name ("cpi", "power", "avf", "iq_avf")."""
        try:
            return {"cpi": self.cpi, "power": self.power,
                    "avf": self.avf, "iq_avf": self.iq_avf,
                    "ipc": self.ipc}[domain]
        except KeyError:
            raise SimulationError(f"unknown trace domain {domain!r}") from None


def _mixed_miss_rates(workload: WorkloadModel, config: MachineConfig,
                      n_samples: int) -> Dict[str, np.ndarray]:
    """Per-sample DL1 / L2 / IL1 miss rates from the footprint mixtures.

    An access component with working set ``2**fp`` KB misses a cache of
    ``C`` KB with probability ``sigmoid((fp - log2 C) / sharpness)`` —
    the smoothed capacity-miss model; per-phase rates are then mixed by
    the schedule's phase weights.
    """
    weights = workload.phase_weights(n_samples)
    fp_log2, fp_w = workload.footprint_components()

    log2_dl1 = np.log2(config.dl1_size_kb)
    log2_l2 = np.log2(config.l2_size_kb)

    dl1_capacity = np.sum(
        fp_w * _sigmoid((fp_log2 - log2_dl1) / _DL1_SHARPNESS), axis=1
    )
    l2_capacity = np.sum(
        fp_w * _sigmoid((fp_log2 - log2_l2) / _L2_SHARPNESS), axis=1
    )
    stream = workload.phase_vector("l2_stream_fraction")
    compulsory = workload.phase_vector("dl1_compulsory")

    dl1_phase = np.clip(compulsory + stream + dl1_capacity, 0.0, 1.0)
    l2_phase = np.clip(stream + l2_capacity, 0.0, dl1_phase)

    inst_fp = workload.phase_vector("inst_footprint_log2kb")
    il1_phase = np.clip(
        0.004 + 0.6 * _sigmoid((inst_fp - np.log2(config.il1_size_kb))
                               / _IL1_SHARPNESS),
        0.0, 1.0,
    )

    return {
        "dl1": weights @ dl1_phase,      # misses per data access
        "l2": weights @ l2_phase,        # memory accesses per data access
        "il1": weights @ il1_phase,      # misses per IL1 probe
    }


def _performance(workload: WorkloadModel, config: MachineConfig,
                 n_samples: int) -> Dict[str, np.ndarray]:
    """Per-sample CPI and its additive components."""
    attrs = workload.attributes(n_samples)
    miss = _mixed_miss_rates(workload, config, n_samples)

    f_load = attrs["f_load"]
    f_mem = attrs["f_load"] + attrs["f_store"]
    f_branch = attrs["f_branch"]

    # ---- effective in-flight window --------------------------------
    window = np.minimum(
        float(config.rob_size),
        np.minimum(config.iq_size / _IQ_WAITING_SHARE,
                   config.lsq_size / np.maximum(f_mem, 1e-6)),
    )

    # ---- steady-state IPC -------------------------------------------
    ilp_window = attrs["ilp_limit"] * window / (window + attrs["ilp_halfwindow"])
    width_cap = _DISPATCH_EFFICIENCY * config.fetch_width
    port_cap = config.mem_ports / np.maximum(f_mem, 1e-6)
    ipc0 = np.minimum(np.minimum(width_cap, ilp_window), port_cap)
    cpi_base = 1.0 / ipc0

    # ---- branch mispredictions --------------------------------------
    refill = config.pipeline_depth + 0.25 * window / ipc0
    cpi_branch = f_branch * attrs["branch_mispredict"] * refill

    # ---- DL1 hit latency on dependence chains ------------------------
    hiding = attrs["ilp_halfwindow"] / (window + attrs["ilp_halfwindow"])
    cpi_dl1_lat = (f_load * attrs["load_use_weight"]
                   * (config.dl1_latency - 1) * (2.0 * hiding + 0.2))

    # ---- DL1 miss, L2 hit --------------------------------------------
    l2hit_events = f_mem * np.maximum(miss["dl1"] - miss["l2"], 0.0)
    lat_l2 = float(config.l2_latency - config.dl1_latency)
    exposure = _sigmoid((lat_l2 - 0.3 * window / ipc0) / 4.0)
    mlp_short = 1.0 + (attrs["mlp"] - 1.0) * 0.4
    cpi_l2hit = l2hit_events * lat_l2 * exposure / mlp_short

    # ---- L2 miss (memory) --------------------------------------------
    mem_events = f_mem * miss["l2"]
    mlp_long = 1.0 + (attrs["mlp"] - 1.0) * np.clip(
        np.minimum(config.lsq_size / 32.0, window / 96.0), 0.0, 1.0
    )
    mem_lat = float(config.memory_latency + config.l2_latency)
    hide = np.clip(window / (ipc0 * mem_lat), 0.0, 0.35)
    cpi_mem = _MEMORY_OVERLAP * mem_events * mem_lat * (1.0 - hide) / mlp_long

    # ---- IL1 misses (front-end bubbles, mostly L2 hits) ---------------
    il1_events = _IL1_ACCESS_PER_INST * miss["il1"]
    cpi_il1 = il1_events * config.l2_latency * 0.7

    cpi = cpi_base + cpi_branch + cpi_dl1_lat + cpi_l2hit + cpi_mem + cpi_il1
    mem_stall = (cpi_l2hit + cpi_mem) / cpi
    waiting_frac = np.clip(1.0 - ilp_window / width_cap, 0.0, 1.0)

    return {
        "cpi": cpi,
        "ipc": 1.0 / cpi,
        "cpi_base": cpi_base,
        "cpi_branch": cpi_branch,
        "cpi_dl1_lat": cpi_dl1_lat,
        "cpi_l2hit": cpi_l2hit,
        "cpi_mem": cpi_mem,
        "cpi_il1": cpi_il1,
        "mem_stall_frac": mem_stall,
        "waiting_frac": waiting_frac,
        "window": window * np.ones(n_samples),
        "dl1_miss_rate": miss["dl1"],
        "l2_miss_rate": miss["l2"],
        "il1_miss_rate": miss["il1"],
        "f_mem": f_mem,
    }


def _persistence_smooth(trace: np.ndarray, alpha: float = 0.3) -> np.ndarray:
    """Occupancy persistence across sampling intervals.

    Queue occupancy (and hence AVF) is integrated state: it fills and
    drains over many cycles, carrying across interval boundaries.  A
    forward exponential filter (fill/drain time constant of a couple of
    intervals) followed by one short symmetric pass models that
    carry-over, low-passing the occupancy traces relative to the
    instantaneous-rate traces (CPI, power).
    """
    out = np.empty_like(trace)
    acc = trace[0]
    for i, x in enumerate(trace):
        acc = alpha * x + (1.0 - alpha) * acc
        out[i] = acc
    padded = np.concatenate([out[:1], out, out[-1:]])
    return 0.25 * padded[:-2] + 0.5 * padded[1:-1] + 0.25 * padded[2:]


def _noise(trace: np.ndarray, level: float, rng: np.random.Generator) -> np.ndarray:
    """Deterministic texture: Gaussian at ``level`` x the trace's std."""
    if level <= 0.0:
        return trace
    scale = level * float(np.std(trace))
    if scale == 0.0:
        scale = level * max(abs(float(np.mean(trace))), 1e-12) * 0.1
    return trace + rng.normal(scale=scale, size=trace.shape)


def simulate_interval(workload: WorkloadModel, config: MachineConfig,
                      n_samples: int = 128,
                      dvm_policy: Optional[DVMPolicy] = None,
                      noise: bool = True) -> IntervalSimResult:
    """Run the interval model for one (workload, configuration) pair.

    Parameters
    ----------
    workload:
        A :class:`~repro.workloads.phases.WorkloadModel`.
    config:
        Machine configuration; if ``config.dvm_enabled`` the DVM policy
        (``dvm_policy`` or one built from ``config.dvm_threshold``) is
        applied to the IQ AVF and CPI traces.
    n_samples:
        Trace resolution (power of two <= 1024; the paper uses 128).
    noise:
        Apply the deterministic measurement texture (disable for exact
        model-equation tests).
    """
    perf = _performance(workload, config, n_samples)
    attrs = workload.attributes(n_samples)

    avf_model = AVFModel(config)
    avf = avf_model.avf_traces(
        perf["ipc"], perf["mem_stall_frac"], attrs["ace_fraction"],
        perf["f_mem"], perf["window"], perf["waiting_frac"],
    )
    iq_avf = avf["iq"]
    cpi = perf["cpi"]

    dvm_engaged = np.zeros(n_samples)
    if config.dvm_enabled:
        policy = dvm_policy or DVMPolicy(threshold=config.dvm_threshold)
        iq_avf, cpi, dvm_engaged = policy.apply_interval_effect(
            iq_avf, cpi, config, perf["mem_stall_frac"]
        )

    # Occupancy state persists across interval boundaries.
    iq_avf = _persistence_smooth(iq_avf)

    # Processor AVF re-weighted with the (possibly DVM-managed) IQ AVF.
    bits = structure_capacity_bits(config)
    total_bits = sum(bits.values())
    processor_avf = (
        iq_avf * bits["iq"]
        + _persistence_smooth(avf["rob"]) * bits["rob"]
        + _persistence_smooth(avf["lsq"]) * bits["lsq"]
        + _persistence_smooth(avf["regfile"]) * bits["regfile"]
    ) / total_bits

    ipc = 1.0 / cpi
    mix = {k: attrs[k] for k in ("f_load", "f_store", "f_branch", "f_fp")}
    power = WattchModel(config).power_trace(
        ipc, mix, perf["dl1_miss_rate"],
        _IL1_ACCESS_PER_INST * perf["il1_miss_rate"],
    )

    if noise:
        seed = stable_hash(workload.name, config.key(), n_samples)
        rng = np.random.default_rng(seed)
        cpi = np.maximum(_noise(cpi, workload.noise.cpi, rng), 0.05)
        power = np.maximum(_noise(power, workload.noise.power, rng), 1.0)
        processor_avf = np.clip(
            _noise(processor_avf, workload.noise.avf, rng), 0.0, 1.0
        )
        iq_avf = np.clip(_noise(iq_avf, workload.noise.avf, rng), 0.0, 1.0)

    components = {
        k: perf[k] for k in (
            "cpi_base", "cpi_branch", "cpi_dl1_lat", "cpi_l2hit",
            "cpi_mem", "cpi_il1", "mem_stall_frac", "waiting_frac",
            "dl1_miss_rate", "l2_miss_rate", "il1_miss_rate",
        )
    }
    components["dvm_engaged"] = dvm_engaged
    components["rob_avf"] = avf["rob"]
    components["lsq_avf"] = avf["lsq"]

    return IntervalSimResult(
        benchmark=workload.name,
        config=config,
        n_samples=n_samples,
        cpi=cpi,
        power=power,
        avf=processor_avf,
        iq_avf=iq_avf,
        components=components,
    )
