"""Fast first-order superscalar performance model (the sweep backend).

The paper's data comes from ~3,000 detailed simulations (12 benchmarks x
250 configurations).  Detailed cycle-level simulation in Python at that
scale is intractable, so the design-space sweeps run this *interval
model*: a vectorized first-order out-of-order processor model in the
tradition of Karkhanis & Smith's interval analysis — a base steady-state
IPC set by width / inherent ILP / in-flight window, degraded by additive
miss-event penalties (branch mispredictions, IL1 / DL1 / L2 misses) with
window- and MLP-based overlap corrections.

The kernel is *batched*: :func:`simulate_interval_batch` advances a
whole list of configurations through one benchmark at once, evaluating
every model equation on stacked ``(configs, samples)`` matrices — the
per-config parameters enter as ``(configs, 1)`` columns
(:class:`~repro.uarch.params.ConfigBatch`) and the per-sample workload
attributes as shared rows.  Workload attributes, phase weights and
footprint mixtures are computed once per batch instead of once per
config, and the only remaining per-config Python work is the handful of
operations whose floating-point result would change under broadcasting
(phase-mixing matvecs, the Wattch energy scalars, the seeded noise
draws).  One call on a few hundred configs replaces a few hundred
scalar calls at far more than an order of magnitude less wall time
(``benchmarks/bench_kernel.py`` pins the ratio), and every row is
**bit-identical** to the scalar result for that configuration.

:func:`simulate_interval` — the historical one-config entry point — is
the batch-of-one special case; ``tests/test_kernel_batch.py`` pins
golden trace digests proving the rewrite changed no bits.

A seeded, deterministic noise texture (see
:class:`~repro.workloads.phases.NoiseModel`) models the simulation
effects a config->trace predictor cannot see, giving prediction error a
realistic floor.

The detailed cycle-level simulator in :mod:`repro.uarch.detailed` is the
reference implementation these first-order equations are validated
against (see ``tests/test_backend_agreement.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro._validation import stable_hash
from repro.errors import SimulationError
from repro.power.wattch import power_trace_batch
from repro.reliability.avf import AVFModel, structure_capacity_bits
from repro.reliability.dvm import DVMPolicy
from repro.uarch.jit import ewma_scan
from repro.uarch.params import ConfigBatch, MachineConfig
from repro.workloads.phases import WorkloadModel

#: Miss-curve smoothing (log2-KB units): how sharply an access stream
#: transitions from hitting to missing as its working set crosses the
#: cache capacity.
_DL1_SHARPNESS = 0.7
_L2_SHARPNESS = 0.9
_IL1_SHARPNESS = 0.5

#: IL1 probes per instruction (fetch-block granularity).
_IL1_ACCESS_PER_INST = 0.25

#: Fraction of the issue queue assumed occupied by waiting instructions
#: when sizing the effective window (IQ binds only when small).
_IQ_WAITING_SHARE = 0.45

#: Dispatch inefficiency: achievable throughput as a fraction of width.
_DISPATCH_EFFICIENCY = 0.92

#: Residual overlap of long-latency misses beyond explicit MLP
#: bookkeeping (run-ahead effects, hardware prefetch, write buffering).
_MEMORY_OVERLAP = 0.6

#: Performance components copied into every result's ``components``.
_COMPONENT_KEYS = (
    "cpi_base", "cpi_branch", "cpi_dl1_lat", "cpi_l2hit",
    "cpi_mem", "cpi_il1", "mem_stall_frac", "waiting_frac",
    "dl1_miss_rate", "l2_miss_rate", "il1_miss_rate",
)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


@dataclass(frozen=True)
class IntervalSimResult:
    """Per-sample traces produced by one interval-model run."""

    benchmark: str
    config: MachineConfig
    n_samples: int
    cpi: np.ndarray
    power: np.ndarray
    avf: np.ndarray
    iq_avf: np.ndarray
    components: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def ipc(self) -> np.ndarray:
        """Instructions per cycle, the reciprocal CPI trace."""
        return 1.0 / self.cpi

    def trace(self, domain: str) -> np.ndarray:
        """Trace lookup by domain name ("cpi", "power", "avf", "iq_avf")."""
        try:
            return {"cpi": self.cpi, "power": self.power,
                    "avf": self.avf, "iq_avf": self.iq_avf,
                    "ipc": self.ipc}[domain]
        except KeyError:
            raise SimulationError(f"unknown trace domain {domain!r}") from None


@dataclass(frozen=True)
class IntervalBatchResult:
    """Stacked traces for one benchmark across a whole config batch.

    Every trace and component is a ``(len(configs), n_samples)`` matrix
    whose row ``i`` is bit-identical to the scalar
    :func:`simulate_interval` result for ``configs[i]``.  Indexing
    (``batch[i]``) materializes that row as an
    :class:`IntervalSimResult` — the per-row arrays are *views* into
    the batch matrices (copy with ``np.array`` if the batch must be
    reclaimed independently; :meth:`~repro.uarch.simulator.\
SimulationResult.detach` does exactly that downstream).
    """

    benchmark: str
    configs: Tuple[MachineConfig, ...]
    n_samples: int
    cpi: np.ndarray
    power: np.ndarray
    avf: np.ndarray
    iq_avf: np.ndarray
    components: Dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.configs)

    def __getitem__(self, index: int) -> IntervalSimResult:
        return IntervalSimResult(
            benchmark=self.benchmark,
            config=self.configs[index],
            n_samples=self.n_samples,
            cpi=self.cpi[index],
            power=self.power[index],
            avf=self.avf[index],
            iq_avf=self.iq_avf[index],
            components={k: v[index] for k, v in self.components.items()},
        )

    def __iter__(self) -> Iterator[IntervalSimResult]:
        return (self[i] for i in range(len(self)))


def _mix_phases(weights: np.ndarray, phase_rows: np.ndarray) -> np.ndarray:
    """Schedule-weighted phase mixing, one matvec per config row.

    Kept as per-row ``(samples, phases) @ (phases,)`` products instead
    of one ``weights @ phase_rows.T`` matmul on purpose: BLAS uses a
    different summation order for matrix-matrix than for matrix-vector
    products, and the batch kernel's contract is bit-identity with the
    scalar path.  The loop is over configs only (cheap); each matvec is
    the exact call the scalar model issued.
    """
    out = np.empty((phase_rows.shape[0], weights.shape[0]))
    for row in range(phase_rows.shape[0]):
        out[row] = weights @ phase_rows[row]
    return out


def _mixed_miss_rates(workload: WorkloadModel, batch: ConfigBatch,
                      n_samples: int) -> Dict[str, np.ndarray]:
    """Per-sample DL1 / L2 / IL1 miss rates, ``(configs, samples)`` each.

    An access component with working set ``2**fp`` KB misses a cache of
    ``C`` KB with probability ``sigmoid((fp - log2 C) / sharpness)`` —
    the smoothed capacity-miss model; per-phase rates are then mixed by
    the schedule's phase weights.  The footprint mixture is evaluated on
    a ``(configs, phases, components)`` stack so one pass covers the
    whole batch.
    """
    weights = workload.phase_weights(n_samples)
    fp_log2, fp_w = workload.footprint_components()

    log2_dl1 = np.log2(batch.dl1_size_kb)[:, :, None]    # (B, 1, 1)
    log2_l2 = np.log2(batch.l2_size_kb)[:, :, None]

    dl1_capacity = np.sum(
        fp_w * _sigmoid((fp_log2 - log2_dl1) / _DL1_SHARPNESS), axis=-1
    )
    l2_capacity = np.sum(
        fp_w * _sigmoid((fp_log2 - log2_l2) / _L2_SHARPNESS), axis=-1
    )
    stream = workload.phase_vector("l2_stream_fraction")
    compulsory = workload.phase_vector("dl1_compulsory")

    dl1_phase = np.clip(compulsory + stream + dl1_capacity, 0.0, 1.0)
    l2_phase = np.clip(stream + l2_capacity, 0.0, dl1_phase)

    inst_fp = workload.phase_vector("inst_footprint_log2kb")
    il1_phase = np.clip(
        0.004 + 0.6 * _sigmoid((inst_fp - np.log2(batch.il1_size_kb))
                               / _IL1_SHARPNESS),
        0.0, 1.0,
    )

    return {
        "dl1": _mix_phases(weights, dl1_phase),  # misses per data access
        "l2": _mix_phases(weights, l2_phase),    # mem accesses per access
        "il1": _mix_phases(weights, il1_phase),  # misses per IL1 probe
    }


def _performance(workload: WorkloadModel, batch: ConfigBatch,
                 n_samples: int,
                 attrs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Per-sample CPI and its additive components, batched.

    Every equation is the scalar model's expression verbatim; the
    config-dependent terms are ``(configs, 1)`` columns and broadcast
    against the shared ``(samples,)`` workload attributes, so each
    output row carries the scalar result's exact bits.
    """
    miss = _mixed_miss_rates(workload, batch, n_samples)

    f_load = attrs["f_load"]
    f_mem = attrs["f_load"] + attrs["f_store"]
    f_branch = attrs["f_branch"]

    # ---- effective in-flight window --------------------------------
    window = np.minimum(
        batch.rob_size,
        np.minimum(batch.iq_size / _IQ_WAITING_SHARE,
                   batch.lsq_size / np.maximum(f_mem, 1e-6)),
    )

    # ---- steady-state IPC -------------------------------------------
    ilp_window = attrs["ilp_limit"] * window / (window + attrs["ilp_halfwindow"])
    width_cap = _DISPATCH_EFFICIENCY * batch.fetch_width
    port_cap = batch.mem_ports / np.maximum(f_mem, 1e-6)
    ipc0 = np.minimum(np.minimum(width_cap, ilp_window), port_cap)
    cpi_base = 1.0 / ipc0

    # ---- branch mispredictions --------------------------------------
    refill = batch.pipeline_depth + 0.25 * window / ipc0
    cpi_branch = f_branch * attrs["branch_mispredict"] * refill

    # ---- DL1 hit latency on dependence chains ------------------------
    hiding = attrs["ilp_halfwindow"] / (window + attrs["ilp_halfwindow"])
    cpi_dl1_lat = (f_load * attrs["load_use_weight"]
                   * (batch.dl1_latency - 1) * (2.0 * hiding + 0.2))

    # ---- DL1 miss, L2 hit --------------------------------------------
    l2hit_events = f_mem * np.maximum(miss["dl1"] - miss["l2"], 0.0)
    lat_l2 = batch.l2_latency - batch.dl1_latency
    exposure = _sigmoid((lat_l2 - 0.3 * window / ipc0) / 4.0)
    mlp_short = 1.0 + (attrs["mlp"] - 1.0) * 0.4
    cpi_l2hit = l2hit_events * lat_l2 * exposure / mlp_short

    # ---- L2 miss (memory) --------------------------------------------
    mem_events = f_mem * miss["l2"]
    mlp_long = 1.0 + (attrs["mlp"] - 1.0) * np.clip(
        np.minimum(batch.lsq_size / 32.0, window / 96.0), 0.0, 1.0
    )
    mem_lat = batch.memory_latency + batch.l2_latency
    hide = np.clip(window / (ipc0 * mem_lat), 0.0, 0.35)
    cpi_mem = _MEMORY_OVERLAP * mem_events * mem_lat * (1.0 - hide) / mlp_long

    # ---- IL1 misses (front-end bubbles, mostly L2 hits) ---------------
    il1_events = _IL1_ACCESS_PER_INST * miss["il1"]
    cpi_il1 = il1_events * batch.l2_latency * 0.7

    cpi = cpi_base + cpi_branch + cpi_dl1_lat + cpi_l2hit + cpi_mem + cpi_il1
    mem_stall = (cpi_l2hit + cpi_mem) / cpi
    waiting_frac = np.clip(1.0 - ilp_window / width_cap, 0.0, 1.0)

    return {
        "cpi": cpi,
        "ipc": 1.0 / cpi,
        "cpi_base": cpi_base,
        "cpi_branch": cpi_branch,
        "cpi_dl1_lat": cpi_dl1_lat,
        "cpi_l2hit": cpi_l2hit,
        "cpi_mem": cpi_mem,
        "cpi_il1": cpi_il1,
        "mem_stall_frac": mem_stall,
        "waiting_frac": waiting_frac,
        "window": window,
        "dl1_miss_rate": miss["dl1"],
        "l2_miss_rate": miss["l2"],
        "il1_miss_rate": miss["il1"],
        "f_mem": f_mem,
    }


def _persistence_smooth_rows(traces: np.ndarray,
                             alpha: float = 0.3) -> np.ndarray:
    """Occupancy persistence across sampling intervals, per row.

    Queue occupancy (and hence AVF) is integrated state: it fills and
    drains over many cycles, carrying across interval boundaries.  A
    forward exponential filter (fill/drain time constant of a couple of
    intervals) followed by one short symmetric pass models that
    carry-over, low-passing the occupancy traces relative to the
    instantaneous-rate traces (CPI, power).

    The forward filter is the shared scan in
    :func:`repro.uarch.jit.ewma_scan` — one vector op across all rows
    per time step (or the numba kernel under ``REPRO_JIT``), replacing
    the historical per-element Python loop bit-identically.
    """
    out = ewma_scan(traces, alpha)
    padded = np.concatenate([out[:, :1], out, out[:, -1:]], axis=1)
    return (0.25 * padded[:, :-2] + 0.5 * padded[:, 1:-1]
            + 0.25 * padded[:, 2:])


def _persistence_smooth(trace: np.ndarray, alpha: float = 0.3) -> np.ndarray:
    """One-trace persistence smoothing (row-of-one of the batch scan)."""
    return _persistence_smooth_rows(trace[None, :], alpha)[0]


def _noise(trace: np.ndarray, level: float, rng: np.random.Generator) -> np.ndarray:
    """Deterministic texture: Gaussian at ``level`` x the trace's std."""
    if level <= 0.0:
        return trace
    scale = level * float(np.std(trace))
    if scale == 0.0:
        scale = level * max(abs(float(np.mean(trace))), 1e-12) * 0.1
    return trace + rng.normal(scale=scale, size=trace.shape)


def _noise_scales(traces: np.ndarray, level: float) -> np.ndarray:
    """Per-row noise scales, vectorized: ``level * std`` with the
    near-constant-trace fallback of :func:`_noise`.

    ``np.std`` over the last axis of a C-contiguous matrix reduces each
    row with the same pairwise order as a standalone per-row call, so
    these scales carry the scalar path's exact bits.
    """
    scales = level * np.std(traces, axis=-1)
    flat = scales == 0.0
    if flat.any():
        means = np.abs(np.mean(traces[flat], axis=-1))
        scales[flat] = level * np.maximum(means, 1e-12) * 0.1
    return scales


def simulate_interval_batch(workload: WorkloadModel,
                            configs: Union[ConfigBatch,
                                           Sequence[MachineConfig]],
                            n_samples: int = 128,
                            dvm_policy: Optional[DVMPolicy] = None,
                            noise: bool = True) -> IntervalBatchResult:
    """Run the interval model for a whole batch of configurations.

    One kernel invocation advances every configuration through
    ``workload`` on stacked ``(configs, samples)`` matrices; workload
    attributes, phase weights and footprint mixtures are computed once
    for the batch.  Row ``i`` of every output is bit-identical to
    ``simulate_interval(workload, configs[i], ...)``.

    Parameters
    ----------
    workload:
        A :class:`~repro.workloads.phases.WorkloadModel` (shared by the
        whole batch — that sharing is where the speedup comes from).
    configs:
        The configurations, as a sequence or a prebuilt
        :class:`~repro.uarch.params.ConfigBatch`.  DVM is applied to
        exactly the members with ``dvm_enabled`` set, each at its own
        ``dvm_threshold`` (or at ``dvm_policy``'s threshold when one is
        passed, matching the scalar entry point).
    n_samples:
        Trace resolution (power of two <= 1024; the paper uses 128).
    noise:
        Apply the deterministic measurement texture.  The per-config
        noise streams are seeded from each config's own content (same
        seeds, same draw order as the scalar path), so batching never
        changes a single sample.
    """
    batch = configs if isinstance(configs, ConfigBatch) else ConfigBatch(configs)
    n_configs = len(batch)

    attrs = workload.attributes(n_samples)
    perf = _performance(workload, batch, n_samples, attrs)

    avf_model = AVFModel(batch)
    avf = avf_model.avf_traces(
        perf["ipc"], perf["mem_stall_frac"], attrs["ace_fraction"],
        perf["f_mem"], perf["window"], perf["waiting_frac"],
    )
    iq_avf = avf["iq"]
    cpi = perf["cpi"]

    dvm_engaged = np.zeros((n_configs, n_samples))
    enabled = batch.dvm_enabled          # (B, 1) bool column
    if enabled.any():
        # Scalar semantics: an explicit policy overrides every config's
        # own threshold; otherwise each config manages to its own.
        policy = dvm_policy or DVMPolicy()
        threshold = (policy.threshold if dvm_policy is not None
                     else batch.dvm_threshold)
        managed_avf, managed_cpi, engaged = policy.apply_interval_effect(
            iq_avf, cpi, batch, perf["mem_stall_frac"], threshold=threshold
        )
        iq_avf = np.where(enabled, managed_avf, iq_avf)
        cpi = np.where(enabled, managed_cpi, cpi)
        dvm_engaged = np.where(enabled, engaged, 0.0)

    # Occupancy state persists across interval boundaries: all four
    # structures' traces go through one stacked scan (rows are
    # independent, so stacking changes no bits).
    stacked = np.concatenate([iq_avf, avf["rob"], avf["lsq"], avf["regfile"]])
    smoothed = _persistence_smooth_rows(stacked)
    iq_avf = smoothed[:n_configs]
    rob_smooth = smoothed[n_configs:2 * n_configs]
    lsq_smooth = smoothed[2 * n_configs:3 * n_configs]
    rf_smooth = smoothed[3 * n_configs:]

    # Processor AVF re-weighted with the (possibly DVM-managed) IQ AVF.
    bits = structure_capacity_bits(batch)
    total_bits = sum(bits.values())
    processor_avf = (
        iq_avf * bits["iq"]
        + rob_smooth * bits["rob"]
        + lsq_smooth * bits["lsq"]
        + rf_smooth * bits["regfile"]
    ) / total_bits

    ipc = 1.0 / cpi
    mix = {k: attrs[k] for k in ("f_load", "f_store", "f_branch", "f_fp")}
    power = power_trace_batch(
        batch, ipc, mix, perf["dl1_miss_rate"],
        _IL1_ACCESS_PER_INST * perf["il1_miss_rate"],
    )

    if noise:
        # Per-config streams: each row's generator is seeded from that
        # config's content and drawn in the scalar path's exact order
        # (cpi, power, avf, iq_avf) — batching a job next to others
        # never changes its texture.  Everything except the ordered
        # draws themselves is vectorized: noise scales row-wise up
        # front, floor/ceiling clamps matrix-wide afterwards.
        levels = workload.noise
        planned = [
            (traces, _noise_scales(traces, level) if level > 0.0 else None)
            for traces, level in ((cpi, levels.cpi), (power, levels.power),
                                  (processor_avf, levels.avf),
                                  (iq_avf, levels.avf))
        ]
        for row, config in enumerate(batch.configs):
            rng = np.random.default_rng(
                stable_hash(workload.name, config.key(), n_samples))
            for traces, scales in planned:
                if scales is not None:
                    traces[row] += rng.normal(scale=scales[row],
                                              size=n_samples)
        cpi = np.maximum(cpi, 0.05)
        power = np.maximum(power, 1.0)
        processor_avf = np.clip(processor_avf, 0.0, 1.0)
        iq_avf = np.clip(iq_avf, 0.0, 1.0)

    components = {k: perf[k] for k in _COMPONENT_KEYS}
    components["dvm_engaged"] = dvm_engaged
    components["rob_avf"] = avf["rob"]
    components["lsq_avf"] = avf["lsq"]

    return IntervalBatchResult(
        benchmark=workload.name,
        configs=batch.configs,
        n_samples=n_samples,
        cpi=cpi,
        power=power,
        avf=processor_avf,
        iq_avf=iq_avf,
        components=components,
    )


def simulate_interval(workload: WorkloadModel, config: MachineConfig,
                      n_samples: int = 128,
                      dvm_policy: Optional[DVMPolicy] = None,
                      noise: bool = True) -> IntervalSimResult:
    """Run the interval model for one (workload, configuration) pair.

    The batch-of-one case of :func:`simulate_interval_batch` (same
    bits, same seeds — the golden-digest tests in
    ``tests/test_kernel_batch.py`` pin the equivalence against the
    pre-batching implementation).

    Parameters
    ----------
    workload:
        A :class:`~repro.workloads.phases.WorkloadModel`.
    config:
        Machine configuration; if ``config.dvm_enabled`` the DVM policy
        (``dvm_policy`` or one built from ``config.dvm_threshold``) is
        applied to the IQ AVF and CPI traces.
    n_samples:
        Trace resolution (power of two <= 1024; the paper uses 128).
    noise:
        Apply the deterministic measurement texture (disable for exact
        model-equation tests).
    """
    return simulate_interval_batch(
        workload, (config,), n_samples=n_samples,
        dvm_policy=dvm_policy, noise=noise,
    )[0]
