"""Design-space exploration: sampling, sweeping and importance analysis.

``space``
    :class:`~repro.dse.space.DesignSpace` — the paper's Table 2 parameter
    levels (train and test splits) and normalized design-vector encoding.
``lhs``
    Latin Hypercube Sampling with L2-star-discrepancy matrix selection
    (Section 3's sampling strategy).
``runner`` / ``dataset``
    Sweep execution over (benchmark × configuration) and the resulting
    :class:`~repro.dse.dataset.DynamicsDataset`.
``importance``
    Regression-tree split-order / split-frequency aggregation feeding the
    Figure 11 star plots.
``explorer``
    :class:`~repro.dse.explorer.PredictiveExplorer` — one-shot search of
    the full space against :class:`~repro.dse.explorer.Constraint` /
    :class:`~repro.dse.explorer.Objective` scenario criteria, evaluated
    on *predicted traces* through the vectorized reducer registry.
``active``
    :class:`~repro.dse.active.ActiveSearch` — the closed loop: ensemble
    uncertainty picks each next engine batch (EI / UCB / max-variance
    acquisition, Pareto mode, budget/convergence stopping).
"""

from repro.dse.space import DesignSpace, Parameter, paper_design_space
from repro.dse.lhs import latin_hypercube, l2_star_discrepancy, best_lhs_matrix
from repro.dse.dataset import DynamicsDataset
from repro.dse.runner import SweepRunner
from repro.dse.active import (
    ActiveSearch,
    ActiveSearchResult,
    ActiveSearchSettings,
    ParetoPoint,
    RoundRecord,
    pareto_front,
    run_active_search,
)

__all__ = [
    "DesignSpace",
    "Parameter",
    "paper_design_space",
    "latin_hypercube",
    "l2_star_discrepancy",
    "best_lhs_matrix",
    "DynamicsDataset",
    "SweepRunner",
    "ActiveSearch",
    "ActiveSearchResult",
    "ActiveSearchSettings",
    "ParetoPoint",
    "RoundRecord",
    "pareto_front",
    "run_active_search",
]
