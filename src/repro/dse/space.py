"""The microarchitecture design space (the paper's Table 2).

Nine parameters with discrete levels; the *train* and *test* splits use
(partially disjoint) level sets, exactly as in Table 2 — so the test
configurations probe the models at genuinely unexplored design points.

Design vectors are encoded for the models by mapping each parameter value
to ``[0, 1]``: sizes on a log2 scale (a 4 MB L2 is "twice" a 1 MB L2 in
two steps, not sixteen), latencies and widths handled likewise for
consistency with the powers-of-two level grids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro._validation import rng_from_seed
from repro.errors import ConfigurationError, SamplingError
from repro.uarch.params import VARIED_PARAMETERS, MachineConfig

#: Recognized split names.
SPLITS = ("train", "test")


@dataclass(frozen=True)
class Parameter:
    """One design-space dimension with its train/test level sets."""

    name: str
    train_levels: Tuple[float, ...]
    test_levels: Tuple[float, ...]
    log_scale: bool = True
    description: str = ""

    def __post_init__(self):
        if not self.train_levels or not self.test_levels:
            raise ConfigurationError(f"parameter {self.name}: empty level set")
        if tuple(sorted(self.train_levels)) != self.train_levels:
            raise ConfigurationError(
                f"parameter {self.name}: train levels must be sorted ascending"
            )
        if tuple(sorted(self.test_levels)) != self.test_levels:
            raise ConfigurationError(
                f"parameter {self.name}: test levels must be sorted ascending"
            )

    def levels(self, split: str) -> Tuple[float, ...]:
        """Level set for ``split`` ("train" or "test")."""
        if split not in SPLITS:
            raise ConfigurationError(f"split must be one of {SPLITS}, got {split!r}")
        return self.train_levels if split == "train" else self.test_levels

    @property
    def n_levels(self) -> int:
        """Number of train levels (Table 2's "# of Levels" column)."""
        return len(self.train_levels)

    def _scaled(self, value: float) -> float:
        return math.log2(value) if self.log_scale else float(value)

    def encode(self, value: float) -> float:
        """Normalize a parameter value to ``[0, 1]``.

        The range is the union of train and test levels so both splits
        encode consistently.
        """
        all_levels = set(self.train_levels) | set(self.test_levels)
        lo = self._scaled(min(all_levels))
        hi = self._scaled(max(all_levels))
        if hi == lo:
            return 0.5
        return (self._scaled(value) - lo) / (hi - lo)


def _table2_parameters() -> Tuple[Parameter, ...]:
    """The paper's Table 2, verbatim."""
    return (
        Parameter("fetch_width", (2, 4, 8, 16), (2, 8),
                  description="fetch/issue/commit width"),
        Parameter("rob_size", (96, 128, 160), (128, 160),
                  description="reorder buffer entries"),
        Parameter("iq_size", (32, 64, 96, 128), (32, 64),
                  description="issue queue entries"),
        Parameter("lsq_size", (16, 24, 32, 64), (16, 24, 32),
                  description="load/store queue entries"),
        Parameter("l2_size_kb", (256, 1024, 2048, 4096), (256, 1024, 4096),
                  description="unified L2 capacity (KB)"),
        Parameter("l2_latency", (8, 12, 14, 16, 20), (8, 12, 14),
                  log_scale=False, description="L2 access latency (cycles)"),
        Parameter("il1_size_kb", (8, 16, 32, 64), (8, 16, 32),
                  description="L1 instruction cache capacity (KB)"),
        Parameter("dl1_size_kb", (8, 16, 32, 64), (16, 32, 64),
                  description="L1 data cache capacity (KB)"),
        Parameter("dl1_latency", (1, 2, 3, 4), (1, 2, 3),
                  log_scale=False, description="L1 data cache latency (cycles)"),
    )


#: The DVM design parameter of Section 5 (0 = disabled, 1 = enabled).
DVM_PARAMETER = Parameter("dvm", (0, 1), (0, 1), log_scale=False,
                          description="dynamic vulnerability management enabled")


class DesignSpace:
    """A discrete microarchitecture design space.

    Parameters
    ----------
    parameters:
        Ordered parameter definitions; defaults to the paper's Table 2.

    Examples
    --------
    >>> space = paper_design_space()
    >>> space.n_parameters
    9
    >>> space.size("train")
    245760
    >>> cfg = space.config_from_values({p.name: p.train_levels[0]
    ...                                 for p in space.parameters})
    >>> cfg.fetch_width
    2
    """

    def __init__(self, parameters: Optional[Sequence[Parameter]] = None):
        self._parameters: Tuple[Parameter, ...] = tuple(
            parameters if parameters is not None else _table2_parameters()
        )
        names = [p.name for p in self._parameters]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate parameter names in {names}")

    # ------------------------------------------------------------------
    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        return self._parameters

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self._parameters)

    @property
    def n_parameters(self) -> int:
        return len(self._parameters)

    def parameter(self, name: str) -> Parameter:
        """Look a parameter up by name."""
        for p in self._parameters:
            if p.name == name:
                return p
        raise ConfigurationError(f"unknown parameter {name!r}; have {self.names}")

    def size(self, split: str = "train") -> int:
        """Number of distinct configurations in the split's full grid."""
        out = 1
        for p in self._parameters:
            out *= len(p.levels(split))
        return out

    def with_dvm_parameter(self) -> "DesignSpace":
        """The Section 5 space: Table 2 plus the DVM on/off parameter."""
        if "dvm" in self.names:
            return self
        return DesignSpace(self._parameters + (DVM_PARAMETER,))

    # ------------------------------------------------------------------
    # Configuration construction
    # ------------------------------------------------------------------
    def config_from_values(self, values: Dict[str, float]) -> MachineConfig:
        """Build a :class:`MachineConfig` from a name->value mapping.

        Unknown names raise; the special ``dvm`` parameter maps to
        ``dvm_enabled``.  Parameters absent from the space keep their
        Table 1 baseline defaults.
        """
        kwargs = {}
        for name, value in values.items():
            if name == "dvm":
                kwargs["dvm_enabled"] = bool(round(value))
            elif name in VARIED_PARAMETERS:
                kwargs[name] = int(value)
            else:
                raise ConfigurationError(f"unknown parameter {name!r}")
        return MachineConfig(**kwargs)

    def config_from_level_indices(self, indices: Sequence[int],
                                  split: str = "train") -> MachineConfig:
        """Build a config from per-parameter level indices."""
        if len(indices) != self.n_parameters:
            raise ConfigurationError(
                f"expected {self.n_parameters} level indices, got {len(indices)}"
            )
        values = {}
        for p, idx in zip(self._parameters, indices):
            levels = p.levels(split)
            if not 0 <= idx < len(levels):
                raise ConfigurationError(
                    f"level index {idx} out of range for {p.name} ({split})"
                )
            values[p.name] = levels[idx]
        return self.config_from_values(values)

    def values_of(self, config: MachineConfig) -> Dict[str, float]:
        """Extract this space's parameter values from a config."""
        out = {}
        for p in self._parameters:
            if p.name == "dvm":
                out[p.name] = float(config.dvm_enabled)
            else:
                out[p.name] = float(getattr(config, p.name))
        return out

    # ------------------------------------------------------------------
    # Model encoding
    # ------------------------------------------------------------------
    def encode(self, config: MachineConfig) -> np.ndarray:
        """Normalized design vector for one configuration."""
        vals = self.values_of(config)
        return np.array([p.encode(vals[p.name]) for p in self._parameters])

    def encode_many(self, configs: Iterable[MachineConfig]) -> np.ndarray:
        """Design matrix, one row per configuration."""
        rows = [self.encode(c) for c in configs]
        if not rows:
            raise ConfigurationError("encode_many received no configurations")
        return np.vstack(rows)

    # ------------------------------------------------------------------
    # Random (test-split) sampling
    # ------------------------------------------------------------------
    def sample_random(self, n: int, split: str = "test",
                      seed=0, unique: bool = True) -> List[MachineConfig]:
        """``n`` independent uniform draws over the split's level grid.

        This is how the paper builds its 50-point test set ("a randomly
        and independently generated set of test data points").
        """
        if n < 1:
            raise SamplingError(f"n must be >= 1, got {n}")
        if unique and n > self.size(split):
            raise SamplingError(
                f"cannot draw {n} unique configurations from a grid of "
                f"{self.size(split)}"
            )
        rng = rng_from_seed(seed)
        seen = set()
        out: List[MachineConfig] = []
        attempts = 0
        while len(out) < n:
            attempts += 1
            if attempts > 1000 * n:
                raise SamplingError(
                    f"rejection sampling failed to find {n} unique points"
                )
            idx = tuple(
                int(rng.integers(len(p.levels(split)))) for p in self._parameters
            )
            if unique:
                if idx in seen:
                    continue
                seen.add(idx)
            out.append(self.config_from_level_indices(idx, split))
        return out


def paper_design_space() -> DesignSpace:
    """The 9-parameter Table 2 design space."""
    return DesignSpace()


#: Table 2 rendered as rows for reports: (name, train, test, #levels).
def table2_rows(space: Optional[DesignSpace] = None) -> List[Tuple[str, str, str, int]]:
    """Human-readable Table 2 rows for the given (default: paper) space."""
    space = space or paper_design_space()
    rows = []
    for p in space.parameters:
        rows.append((
            p.name,
            ", ".join(str(int(v)) for v in p.train_levels),
            ", ".join(str(int(v)) for v in p.test_levels),
            p.n_levels,
        ))
    return rows
