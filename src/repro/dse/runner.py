"""Sweep execution: simulate benchmarks across sampled configurations.

:class:`SweepRunner` reproduces the paper's data-collection step: run the
simulator over every (benchmark, configuration) pair and collect the
per-interval CPI / power / AVF traces into
:class:`~repro.dse.dataset.DynamicsDataset` objects.

All simulation goes through the execution engine
(:mod:`repro.engine`): each sweep becomes one job batch, so the same
code path transparently gains process-pool parallelism
(``SweepRunner(engine=create_engine(jobs=8))``), on-disk result caching
(``create_engine(cache_dir=...)``) and multi-host distribution
(``create_engine(hosts=["hostA:7821", "hostB:7821"])`` against ``repro
worker serve`` processes).  Because every job is deterministic, the
distributed, parallel and sequential paths produce bit-identical
datasets.

Two consumption styles are offered.  The batch methods (``run_configs``,
``run_many``, ``run_train_test``) block until every job finishes and
return datasets in group order.  The streaming generators
(``run_many_streaming``, ``run_grid_streaming``) submit the same jobs as
one engine batch but yield each group's dataset the moment its last job
drains — in *completion* order — so callers can fit models on finished
groups while the remainder of the sweep is still simulating.  Both
styles assemble datasets identically; ``tests/test_streaming.py`` pins
that they are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dse.dataset import DynamicsDataset
from repro.dse.lhs import sample_test_configs, sample_train_configs
from repro.dse.space import DesignSpace, paper_design_space
from repro.engine.executor import ExecutionEngine
from repro.engine.jobs import SimJob
from repro.engine.shm import stack_rows
from repro.uarch.params import MachineConfig
from repro.uarch.simulator import DOMAINS, SimulationResult, Simulator
from repro.workloads.phases import WorkloadModel


@dataclass(frozen=True)
class SweepPlan:
    """A reproducible train/test sampling plan over a design space."""

    space: DesignSpace
    n_train: int = 200
    n_test: int = 50
    n_lhs_matrices: int = 20
    seed: int = 0

    def sample(self) -> Tuple[List[MachineConfig], List[MachineConfig]]:
        """Draw the (train, test) configuration lists."""
        train = sample_train_configs(
            self.space, self.n_train, self.n_lhs_matrices, self.seed
        )
        test = sample_test_configs(self.space, self.n_test, self.seed + 1)
        return train, test


def _benchmark_name(workload: Union[str, WorkloadModel]) -> str:
    """Canonical benchmark name (resolves registry aliases)."""
    if isinstance(workload, WorkloadModel):
        return workload.name
    from repro.workloads.spec2000 import get_benchmark

    return get_benchmark(workload).name


class SweepRunner:
    """Runs simulation sweeps and assembles datasets.

    Parameters
    ----------
    simulator:
        Backend settings to stamp onto each job; defaults to the
        interval model with noise.
    domains:
        Metric domains to record (default: cpi, power, avf, iq_avf).
    n_samples:
        Trace resolution (the paper's default is 128).
    engine:
        Execution engine for the job batches; defaults to a fresh
        in-process engine.  Pass
        ``repro.engine.create_engine(jobs=..., cache_dir=...)`` for
        parallel and/or cached sweeps, or ``create_engine(hosts=...)``
        to farm chunks out to remote worker hosts.
    """

    def __init__(self, simulator: Optional[Simulator] = None,
                 domains: Sequence[str] = DOMAINS,
                 n_samples: int = 128,
                 engine: Optional[ExecutionEngine] = None):
        self.simulator = simulator or Simulator()
        self.domains = tuple(domains)
        self.n_samples = n_samples
        self.engine = engine or ExecutionEngine()

    # ------------------------------------------------------------------
    def jobs_for(self, workload: Union[str, WorkloadModel],
                 configs: Sequence[MachineConfig]) -> List[SimJob]:
        """The job batch one :meth:`run_configs` call would submit."""
        return self.simulator.jobs(workload, configs,
                                   n_samples=self.n_samples)

    def _assemble(self, benchmark: str, configs: Sequence[MachineConfig],
                  results: Sequence[SimulationResult],
                  space: DesignSpace) -> DynamicsDataset:
        # stack_rows returns zero-copy slices of the batch's
        # shared-memory arena whenever a group's trace rows landed
        # contiguously (every cold-cache sweep); otherwise it stacks.
        traces = {
            d: (stack_rows([result.trace(d) for result in results])
                if results else np.empty((0, self.n_samples)))
            for d in self.domains
        }
        return DynamicsDataset(
            benchmark=benchmark, space=space,
            configs=list(configs), traces=traces,
        )

    # ------------------------------------------------------------------
    def run_configs(self, workload: Union[str, WorkloadModel],
                    configs: Sequence[MachineConfig],
                    space: Optional[DesignSpace] = None) -> DynamicsDataset:
        """Simulate one benchmark over a list of configurations."""
        space = space or paper_design_space()
        jobs = self.jobs_for(workload, configs)
        results = self.engine.run(jobs)
        return self._assemble(_benchmark_name(workload), configs, results,
                              space)

    def run_train_test(self, workload: Union[str, WorkloadModel],
                       plan: Optional[SweepPlan] = None,
                       ) -> Tuple[DynamicsDataset, DynamicsDataset]:
        """The paper's 200-train / 50-test data collection for one benchmark.

        Train and test configurations are submitted as **one** job batch
        so a parallel engine keeps every worker busy across the split
        boundary.
        """
        plan = plan or SweepPlan(space=paper_design_space())
        train_cfgs, test_cfgs = plan.sample()
        datasets = self.run_many(workload, [train_cfgs, test_cfgs], plan.space)
        return datasets[0], datasets[1]

    def run_many(self, workload: Union[str, WorkloadModel],
                 config_groups: Sequence[Sequence[MachineConfig]],
                 space: Optional[DesignSpace] = None,
                 ) -> List[DynamicsDataset]:
        """Simulate several configuration groups as a single job batch.

        Returns one dataset per group, in group order.  Submitting all
        groups at once maximizes executor utilization and lets the cache
        deduplicate configurations shared between groups.
        """
        datasets: List[Optional[DynamicsDataset]] = [None] * len(config_groups)
        for group_index, dataset in self.run_many_streaming(
                workload, config_groups, space):
            datasets[group_index] = dataset
        return datasets  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Active learning
    # ------------------------------------------------------------------
    def run_active(self, workload: Union[str, WorkloadModel],
                   objectives, constraints: Sequence = (),
                   settings=None, space: Optional[DesignSpace] = None,
                   init_configs: Optional[Sequence[MachineConfig]] = None,
                   **kwargs):
        """Closed-loop active-learning search (see :mod:`repro.dse.active`).

        Instead of simulating a fixed LHS sample, the loop alternates
        ensemble fitting, acquisition scoring, and top-``batch_size``
        engine batches until the simulation ``budget`` is spent or the
        incumbent converges.  Every batch goes through this runner's
        engine, so parallel, cached and distributed execution apply
        unchanged.

        Parameters
        ----------
        workload:
            Benchmark name or workload model.
        objectives:
            One :class:`~repro.dse.explorer.Objective` or a sequence
            (several enable Pareto mode).
        constraints:
            Scenario :class:`~repro.dse.explorer.Constraint` terms.
        settings:
            :class:`~repro.dse.active.ActiveSearchSettings`; keyword
            arguments (``budget=...``, ``strategy=...``) may be passed
            directly instead.
        space:
            Design space; defaults to the paper's Table 2 space.
        init_configs:
            Explicit initial design (e.g. the prefix of a fixed LHS
            sweep, for matched-seed comparisons).

        Returns
        -------
        :class:`~repro.dse.active.ActiveSearchResult`
        """
        from repro.dse.active import ActiveSearch

        search = ActiveSearch(self, objectives, constraints=constraints,
                              settings=settings, space=space, **kwargs)
        return search.run(workload, init_configs=init_configs)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def run_many_streaming(self, workload: Union[str, WorkloadModel],
                           config_groups: Sequence[Sequence[MachineConfig]],
                           space: Optional[DesignSpace] = None,
                           ) -> Iterator[Tuple[int, DynamicsDataset]]:
        """Stream ``(group_index, dataset)`` pairs as groups drain.

        All groups are submitted as **one** engine batch; each group's
        dataset is yielded the moment its last job resolves, in group
        *completion* order.  The assembled datasets are bit-identical to
        :meth:`run_many`'s — only the delivery order differs.
        """
        for _, group_index, dataset in self.run_grid_streaming(
                [(workload, config_groups)], space):
            yield group_index, dataset

    def run_grid_streaming(
            self,
            requests: Sequence[Tuple[Union[str, WorkloadModel],
                                     Sequence[Sequence[MachineConfig]]]],
            space: Optional[DesignSpace] = None,
            ) -> Iterator[Tuple[int, int, DynamicsDataset]]:
        """Stream a whole (workload x configuration-group) grid.

        ``requests`` is a sequence of ``(workload, config_groups)``
        pairs.  Every job across every request is submitted as a single
        engine batch — a large worker pool stays saturated across
        benchmark boundaries instead of draining at the tail of each
        per-benchmark sweep — and ``(request_index, group_index,
        dataset)`` triples are yielded as each group's jobs drain.

        Cache hits resolve immediately, so fully-cached groups are
        yielded before any simulation completes.  Empty groups are
        yielded first of all.
        """
        space = space or paper_design_space()
        jobs: List[SimJob] = []
        slots = []       # (benchmark, configs, results, request/group index)
        owner: List[Tuple[int, int]] = []  # global job index -> (slot, pos)
        for request_index, (workload, config_groups) in enumerate(requests):
            benchmark = _benchmark_name(workload)
            for group_index, group in enumerate(config_groups):
                group = list(group)
                slot = {
                    "request": request_index,
                    "group": group_index,
                    "benchmark": benchmark,
                    "configs": group,
                    "results": [None] * len(group),
                    "remaining": len(group),
                }
                position = len(slots)
                slots.append(slot)
                if group:
                    group_jobs = self.jobs_for(workload, group)
                    jobs.extend(group_jobs)
                    owner.extend((position, i) for i in range(len(group)))

        handle = self.engine.submit(jobs)
        # Degenerate groups have nothing to wait for.
        for slot in slots:
            if slot["remaining"] == 0:
                yield (slot["request"], slot["group"],
                       self._assemble(slot["benchmark"], slot["configs"],
                                      slot["results"], space))
        for job_index, result in handle.as_completed():
            position, local = owner[job_index]
            slot = slots[position]
            slot["results"][local] = result
            slot["remaining"] -= 1
            if slot["remaining"] == 0:
                yield (slot["request"], slot["group"],
                       self._assemble(slot["benchmark"], slot["configs"],
                                      slot["results"], space))
