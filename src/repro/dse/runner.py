"""Sweep execution: simulate benchmarks across sampled configurations.

:class:`SweepRunner` reproduces the paper's data-collection step: run the
simulator over every (benchmark, configuration) pair and collect the
per-interval CPI / power / AVF traces into
:class:`~repro.dse.dataset.DynamicsDataset` objects.  With the interval
backend a full paper-scale sweep (12 benchmarks x 250 configurations)
takes a few seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dse.dataset import DynamicsDataset
from repro.dse.lhs import sample_test_configs, sample_train_configs
from repro.dse.space import DesignSpace, paper_design_space
from repro.uarch.params import MachineConfig
from repro.uarch.simulator import DOMAINS, Simulator
from repro.workloads.phases import WorkloadModel
from repro.workloads.spec2000 import get_benchmark


@dataclass(frozen=True)
class SweepPlan:
    """A reproducible train/test sampling plan over a design space."""

    space: DesignSpace
    n_train: int = 200
    n_test: int = 50
    n_lhs_matrices: int = 20
    seed: int = 0

    def sample(self) -> Tuple[List[MachineConfig], List[MachineConfig]]:
        """Draw the (train, test) configuration lists."""
        train = sample_train_configs(
            self.space, self.n_train, self.n_lhs_matrices, self.seed
        )
        test = sample_test_configs(self.space, self.n_test, self.seed + 1)
        return train, test


class SweepRunner:
    """Runs simulation sweeps and assembles datasets.

    Parameters
    ----------
    simulator:
        Backend to use; defaults to the interval model with noise.
    domains:
        Metric domains to record (default: cpi, power, avf, iq_avf).
    n_samples:
        Trace resolution (the paper's default is 128).
    """

    def __init__(self, simulator: Optional[Simulator] = None,
                 domains: Sequence[str] = DOMAINS,
                 n_samples: int = 128):
        self.simulator = simulator or Simulator()
        self.domains = tuple(domains)
        self.n_samples = n_samples

    def run_configs(self, workload: Union[str, WorkloadModel],
                    configs: Sequence[MachineConfig],
                    space: Optional[DesignSpace] = None) -> DynamicsDataset:
        """Simulate one benchmark over a list of configurations."""
        if isinstance(workload, str):
            workload = get_benchmark(workload)
        space = space or paper_design_space()
        rows: Dict[str, list] = {d: [] for d in self.domains}
        for config in configs:
            result = self.simulator.run(workload, config, self.n_samples)
            for d in self.domains:
                rows[d].append(result.trace(d))
        traces = {d: np.vstack(vals) for d, vals in rows.items()}
        return DynamicsDataset(
            benchmark=workload.name, space=space,
            configs=list(configs), traces=traces,
        )

    def run_train_test(self, workload: Union[str, WorkloadModel],
                       plan: Optional[SweepPlan] = None,
                       ) -> Tuple[DynamicsDataset, DynamicsDataset]:
        """The paper's 200-train / 50-test data collection for one benchmark."""
        plan = plan or SweepPlan(space=paper_design_space())
        train_cfgs, test_cfgs = plan.sample()
        train = self.run_configs(workload, train_cfgs, plan.space)
        test = self.run_configs(workload, test_cfgs, plan.space)
        return train, test
