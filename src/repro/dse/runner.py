"""Sweep execution: simulate benchmarks across sampled configurations.

:class:`SweepRunner` reproduces the paper's data-collection step: run the
simulator over every (benchmark, configuration) pair and collect the
per-interval CPI / power / AVF traces into
:class:`~repro.dse.dataset.DynamicsDataset` objects.

All simulation goes through the execution engine
(:mod:`repro.engine`): each sweep becomes one job batch, so the same
code path transparently gains process-pool parallelism
(``SweepRunner(engine=create_engine(jobs=8))``) and on-disk result
caching (``create_engine(cache_dir=...)``).  Because every job is
deterministic, the parallel and sequential paths produce bit-identical
datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dse.dataset import DynamicsDataset
from repro.dse.lhs import sample_test_configs, sample_train_configs
from repro.dse.space import DesignSpace, paper_design_space
from repro.engine.executor import ExecutionEngine
from repro.engine.jobs import SimJob
from repro.uarch.params import MachineConfig
from repro.uarch.simulator import DOMAINS, SimulationResult, Simulator
from repro.workloads.phases import WorkloadModel


@dataclass(frozen=True)
class SweepPlan:
    """A reproducible train/test sampling plan over a design space."""

    space: DesignSpace
    n_train: int = 200
    n_test: int = 50
    n_lhs_matrices: int = 20
    seed: int = 0

    def sample(self) -> Tuple[List[MachineConfig], List[MachineConfig]]:
        """Draw the (train, test) configuration lists."""
        train = sample_train_configs(
            self.space, self.n_train, self.n_lhs_matrices, self.seed
        )
        test = sample_test_configs(self.space, self.n_test, self.seed + 1)
        return train, test


def _benchmark_name(workload: Union[str, WorkloadModel]) -> str:
    """Canonical benchmark name (resolves registry aliases)."""
    if isinstance(workload, WorkloadModel):
        return workload.name
    from repro.workloads.spec2000 import get_benchmark

    return get_benchmark(workload).name


class SweepRunner:
    """Runs simulation sweeps and assembles datasets.

    Parameters
    ----------
    simulator:
        Backend settings to stamp onto each job; defaults to the
        interval model with noise.
    domains:
        Metric domains to record (default: cpi, power, avf, iq_avf).
    n_samples:
        Trace resolution (the paper's default is 128).
    engine:
        Execution engine for the job batches; defaults to a fresh
        in-process engine.  Pass
        ``repro.engine.create_engine(jobs=..., cache_dir=...)`` for
        parallel and/or cached sweeps.
    """

    def __init__(self, simulator: Optional[Simulator] = None,
                 domains: Sequence[str] = DOMAINS,
                 n_samples: int = 128,
                 engine: Optional[ExecutionEngine] = None):
        self.simulator = simulator or Simulator()
        self.domains = tuple(domains)
        self.n_samples = n_samples
        self.engine = engine or ExecutionEngine()

    # ------------------------------------------------------------------
    def jobs_for(self, workload: Union[str, WorkloadModel],
                 configs: Sequence[MachineConfig]) -> List[SimJob]:
        """The job batch one :meth:`run_configs` call would submit."""
        return self.simulator.jobs(workload, configs,
                                   n_samples=self.n_samples)

    def _assemble(self, benchmark: str, configs: Sequence[MachineConfig],
                  results: Sequence[SimulationResult],
                  space: DesignSpace) -> DynamicsDataset:
        traces = {
            d: (np.vstack([result.trace(d) for result in results])
                if results else np.empty((0, self.n_samples)))
            for d in self.domains
        }
        return DynamicsDataset(
            benchmark=benchmark, space=space,
            configs=list(configs), traces=traces,
        )

    # ------------------------------------------------------------------
    def run_configs(self, workload: Union[str, WorkloadModel],
                    configs: Sequence[MachineConfig],
                    space: Optional[DesignSpace] = None) -> DynamicsDataset:
        """Simulate one benchmark over a list of configurations."""
        space = space or paper_design_space()
        jobs = self.jobs_for(workload, configs)
        results = self.engine.run(jobs)
        return self._assemble(_benchmark_name(workload), configs, results,
                              space)

    def run_train_test(self, workload: Union[str, WorkloadModel],
                       plan: Optional[SweepPlan] = None,
                       ) -> Tuple[DynamicsDataset, DynamicsDataset]:
        """The paper's 200-train / 50-test data collection for one benchmark.

        Train and test configurations are submitted as **one** job batch
        so a parallel engine keeps every worker busy across the split
        boundary.
        """
        plan = plan or SweepPlan(space=paper_design_space())
        train_cfgs, test_cfgs = plan.sample()
        datasets = self.run_many(workload, [train_cfgs, test_cfgs], plan.space)
        return datasets[0], datasets[1]

    def run_many(self, workload: Union[str, WorkloadModel],
                 config_groups: Sequence[Sequence[MachineConfig]],
                 space: Optional[DesignSpace] = None,
                 ) -> List[DynamicsDataset]:
        """Simulate several configuration groups as a single job batch.

        Returns one dataset per group, in group order.  Submitting all
        groups at once maximizes executor utilization and lets the cache
        deduplicate configurations shared between groups.
        """
        space = space or paper_design_space()
        flat: List[MachineConfig] = [c for group in config_groups
                                     for c in group]
        jobs = self.jobs_for(workload, flat)
        results = self.engine.run(jobs)
        benchmark = _benchmark_name(workload)
        datasets = []
        offset = 0
        for group in config_groups:
            chunk = results[offset:offset + len(group)]
            datasets.append(self._assemble(benchmark, group, chunk, space))
            offset += len(group)
        return datasets
