"""Model-driven design-space exploration.

This is the payoff the paper promises: once the wavelet neural networks
are trained on a few hundred simulations, *every other* configuration's
dynamics can be predicted in microseconds — so architects can search the
full design space against scenario-aware criteria ("worst-case power
under 100 W", "IQ AVF never above 0.3", "best CPI subject to both")
without running another simulation.

:class:`PredictiveExplorer` wraps per-domain
:class:`~repro.core.predictor.WaveletNeuralPredictor` models and
evaluates :class:`Constraint`/:class:`Objective` terms over predicted
*traces*, not just aggregates — which is exactly what distinguishes this
methodology from the aggregate-only predictive-DSE line of work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.predictor import WaveletNeuralPredictor
from repro.dse.space import DesignSpace
from repro.errors import ExperimentError, ModelError
from repro.uarch.params import MachineConfig

#: Reduction functions applicable to a predicted trace.
REDUCERS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda t: float(np.mean(t)),
    "max": lambda t: float(np.max(t)),
    "min": lambda t: float(np.min(t)),
    "p95": lambda t: float(np.percentile(t, 95)),
    "std": lambda t: float(np.std(t)),
}


@dataclass(frozen=True)
class Constraint:
    """A scenario constraint over one domain's predicted dynamics.

    ``Constraint("power", "max", "<=", 100.0)`` reads: the predicted
    power trace's maximum must not exceed 100 W.  Trace-level reducers
    ("max", "p95") are the scenario-aware part — aggregate-only models
    cannot express them.
    """

    domain: str
    reducer: str
    op: str
    bound: float

    def __post_init__(self):
        if self.reducer not in REDUCERS:
            raise ModelError(
                f"unknown reducer {self.reducer!r}; choose from "
                f"{sorted(REDUCERS)}"
            )
        if self.op not in ("<=", ">="):
            raise ModelError(f"op must be '<=' or '>=', got {self.op!r}")

    def satisfied(self, trace: np.ndarray) -> bool:
        value = REDUCERS[self.reducer](trace)
        return value <= self.bound if self.op == "<=" else value >= self.bound

    def margin(self, trace: np.ndarray) -> float:
        """Positive slack when satisfied, negative when violated."""
        value = REDUCERS[self.reducer](trace)
        return self.bound - value if self.op == "<=" else value - self.bound

    def describe(self) -> str:
        return f"{self.reducer}({self.domain}) {self.op} {self.bound:g}"


@dataclass(frozen=True)
class Objective:
    """Minimize or maximize a reduced trace statistic."""

    domain: str
    reducer: str = "mean"
    maximize: bool = False

    def __post_init__(self):
        if self.reducer not in REDUCERS:
            raise ModelError(
                f"unknown reducer {self.reducer!r}; choose from "
                f"{sorted(REDUCERS)}"
            )

    def score(self, trace: np.ndarray) -> float:
        """Score where *lower is always better* (sign-folded)."""
        value = REDUCERS[self.reducer](trace)
        return -value if self.maximize else value

    def describe(self) -> str:
        verb = "maximize" if self.maximize else "minimize"
        return f"{verb} {self.reducer}({self.domain})"


@dataclass
class ExplorationResult:
    """Outcome of a predictive design-space search."""

    best_config: Optional[MachineConfig]
    best_score: float
    n_evaluated: int
    n_feasible: int
    ranked: List[Tuple[MachineConfig, float]] = field(default_factory=list)

    @property
    def feasible_fraction(self) -> float:
        return self.n_feasible / self.n_evaluated if self.n_evaluated else 0.0


class PredictiveExplorer:
    """Search a design space using fitted dynamics models.

    Parameters
    ----------
    space:
        The design space whose encoding the models were trained with.
    models:
        Domain name -> fitted :class:`WaveletNeuralPredictor`.  Every
        domain referenced by a constraint or objective must be present.
    """

    def __init__(self, space: DesignSpace,
                 models: Dict[str, WaveletNeuralPredictor]):
        self.space = space
        self.models = dict(models)
        for domain, model in self.models.items():
            if model.selected_indices_ is None:
                raise ModelError(f"model for domain {domain!r} is not fitted")

    # ------------------------------------------------------------------
    def candidate_grid(self, split: str = "train",
                       limit: Optional[int] = None,
                       seed: int = 0) -> List[MachineConfig]:
        """Candidate configurations: the full split grid, or a uniform
        sample of ``limit`` points when the grid is larger."""
        total = self.space.size(split)
        if limit is not None and total > limit:
            return self.space.sample_random(limit, split=split, seed=seed)
        level_sets = [p.levels(split) for p in self.space.parameters]
        configs = []
        for combo in itertools.product(*level_sets):
            values = dict(zip(self.space.names, combo))
            configs.append(self.space.config_from_values(values))
        return configs

    def predict_traces(self, configs: Sequence[MachineConfig],
                       domains: Iterable[str]) -> Dict[str, np.ndarray]:
        """Predicted dynamics per domain, shape ``(n_configs, n_samples)``."""
        X = self.space.encode_many(configs)
        out = {}
        for domain in domains:
            if domain not in self.models:
                raise ExperimentError(
                    f"no model for domain {domain!r}; have "
                    f"{sorted(self.models)}"
                )
            out[domain] = self.models[domain].predict(X)
        return out

    def search(self, objective: Objective,
               constraints: Sequence[Constraint] = (),
               candidates: Optional[Sequence[MachineConfig]] = None,
               limit: int = 4096, top_k: int = 10,
               seed: int = 0) -> ExplorationResult:
        """Find the best feasible configuration under the objective.

        Parameters
        ----------
        objective:
            What to optimize.
        constraints:
            Scenario constraints every feasible config must satisfy.
        candidates:
            Explicit candidate list; defaults to (a sample of) the train
            grid.
        limit:
            Candidate budget when sampling the grid.
        top_k:
            How many ranked feasible configs to return.
        """
        if candidates is None:
            candidates = self.candidate_grid(limit=limit, seed=seed)
        domains = {objective.domain} | {c.domain for c in constraints}
        traces = self.predict_traces(candidates, domains)

        scored: List[Tuple[MachineConfig, float]] = []
        n_feasible = 0
        for i, cfg in enumerate(candidates):
            if all(c.satisfied(traces[c.domain][i]) for c in constraints):
                n_feasible += 1
                scored.append((cfg, objective.score(traces[objective.domain][i])))
        scored.sort(key=lambda pair: pair[1])
        best_config, best_score = (scored[0] if scored else (None, float("inf")))
        return ExplorationResult(
            best_config=best_config,
            best_score=best_score,
            n_evaluated=len(candidates),
            n_feasible=n_feasible,
            ranked=scored[:top_k],
        )

    def sensitivity(self, base: MachineConfig, parameter: str,
                    domain: str, reducer: str = "mean") -> List[Tuple[float, float]]:
        """One-parameter sweep: predicted statistic at every train level.

        Returns ``[(level, value), ...]`` — the "what if we only grew the
        L2?" question answered from the model in microseconds.
        """
        if reducer not in REDUCERS:
            raise ModelError(f"unknown reducer {reducer!r}")
        p = self.space.parameter(parameter)
        configs = []
        for level in p.train_levels:
            values = self.space.values_of(base)
            values[parameter] = level
            configs.append(self.space.config_from_values(values))
        traces = self.predict_traces(configs, [domain])[domain]
        return [(float(level), REDUCERS[reducer](trace))
                for level, trace in zip(p.train_levels, traces)]
