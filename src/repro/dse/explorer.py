"""Model-driven design-space exploration.

This is the payoff the paper promises: once the wavelet neural networks
are trained on a few hundred simulations, *every other* configuration's
dynamics can be predicted in microseconds — so architects can search the
full design space against scenario-aware criteria ("worst-case power
under 100 W", "IQ AVF never above 0.3", "best CPI subject to both")
without running another simulation.

:class:`PredictiveExplorer` wraps per-domain
:class:`~repro.core.predictor.WaveletNeuralPredictor` models and
evaluates :class:`Constraint`/:class:`Objective` terms over predicted
*traces*, not just aggregates — which is exactly what distinguishes this
methodology from the aggregate-only predictive-DSE line of work.
"""

from __future__ import annotations

import itertools
import numbers
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.predictor import WaveletNeuralPredictor
from repro.dse.space import DesignSpace
from repro.errors import ExperimentError, ModelError
from repro.uarch.params import MachineConfig

#: Reduction functions applicable to predicted traces.  Each reducer is
#: vectorized: it accepts either one trace (1-D) or a stacked trace
#: matrix (2-D, one row per configuration) and reduces along ``axis``
#: (default: the sample axis), so the explorer scores thousands of
#: candidate configurations in a handful of numpy calls.
REDUCERS: Dict[str, Callable[..., np.ndarray]] = {
    "mean": lambda t, axis=-1: np.mean(t, axis=axis),
    "max": lambda t, axis=-1: np.max(t, axis=axis),
    "min": lambda t, axis=-1: np.min(t, axis=axis),
    "p95": lambda t, axis=-1: np.percentile(t, 95, axis=axis),
    "p99": lambda t, axis=-1: np.percentile(t, 99, axis=axis),
    "std": lambda t, axis=-1: np.std(t, axis=axis),
    "amax_abs": lambda t, axis=-1: np.max(np.abs(t), axis=axis),
}


def register_reducer(name: str, fn: Callable[..., np.ndarray],
                     overwrite: bool = False) -> None:
    """Register a custom trace reducer for scenario criteria.

    The reducer must have signature ``fn(traces, axis=-1)`` and reduce a
    trace array along ``axis`` (like ``np.mean``), so constraints and
    objectives built on it stay fully vectorized.  It is probed once at
    registration with a small matrix; malformed reducers are rejected
    with :class:`~repro.errors.ModelError`.

    Parameters
    ----------
    name:
        Reducer name as referenced by :class:`Constraint` /
        :class:`Objective` (a valid identifier).
    fn:
        The reduction callable.
    overwrite:
        Allow replacing an existing reducer (off by default so built-ins
        are not shadowed by accident).
    """
    if not isinstance(name, str) or not name.isidentifier():
        raise ModelError(
            f"reducer name must be a valid identifier string, got {name!r}"
        )
    if name in REDUCERS and not overwrite:
        raise ModelError(
            f"reducer {name!r} already registered; pass overwrite=True to "
            f"replace it"
        )
    if not callable(fn):
        raise ModelError(f"reducer {name!r} must be callable, got {fn!r}")
    # Strictly positive probe: reducers like harmonic means are valid on
    # real traces (the simulators clamp them positive) but undefined at 0.
    probe = np.arange(1.0, 9.0).reshape(2, 4)
    try:
        reduced = np.asarray(fn(probe, axis=-1), dtype=float)
    except Exception as exc:
        raise ModelError(
            f"reducer {name!r} failed its probe call fn(traces, axis=-1): "
            f"{exc}"
        ) from exc
    if reduced.shape != (2,) or not np.all(np.isfinite(reduced)):
        raise ModelError(
            f"reducer {name!r} must map a (n, samples) matrix to a finite "
            f"length-n vector along axis=-1, got shape {reduced.shape}"
        )
    REDUCERS[name] = fn


#: Names that :func:`unregister_reducer` refuses to remove (built-ins an
#: existing Constraint/Objective may rely on); overwritten built-ins can
#: still be restored via ``register_reducer(name, fn, overwrite=True)``.
_BUILTIN_REDUCERS = frozenset(REDUCERS)


def unregister_reducer(name: str) -> None:
    """Remove a custom reducer registered via :func:`register_reducer`."""
    if name in _BUILTIN_REDUCERS:
        raise ModelError(f"cannot unregister built-in reducer {name!r}")
    if name not in REDUCERS:
        raise ModelError(f"reducer {name!r} is not registered")
    del REDUCERS[name]


def _reduce(name: str, traces: np.ndarray) -> np.ndarray:
    """Apply a named reducer along the sample axis."""
    return np.asarray(REDUCERS[name](np.asarray(traces, dtype=float),
                                     axis=-1), dtype=float)


@dataclass(frozen=True)
class Constraint:
    """A scenario constraint over one domain's predicted dynamics.

    ``Constraint("power", "max", "<=", 100.0)`` reads: the predicted
    power trace's maximum must not exceed 100 W.  Trace-level reducers
    ("max", "p95") are the scenario-aware part — aggregate-only models
    cannot express them.
    """

    domain: str
    reducer: str
    op: str
    bound: float

    def __post_init__(self):
        if not isinstance(self.domain, str) or not self.domain:
            raise ModelError(
                f"domain must be a non-empty string, got {self.domain!r}"
            )
        if self.reducer not in REDUCERS:
            raise ModelError(
                f"unknown reducer {self.reducer!r}; choose from "
                f"{sorted(REDUCERS)}"
            )
        if self.op not in ("<=", ">="):
            raise ModelError(f"op must be '<=' or '>=', got {self.op!r}")
        if isinstance(self.bound, bool) or not isinstance(
                self.bound, numbers.Real) or not np.isfinite(
                    float(self.bound)):
            raise ModelError(
                f"bound must be a finite number, got {self.bound!r}"
            )

    def satisfied(self, trace: np.ndarray) -> bool:
        value = float(_reduce(self.reducer, trace))
        return value <= self.bound if self.op == "<=" else value >= self.bound

    def satisfied_many(self, traces: np.ndarray) -> np.ndarray:
        """Vectorized feasibility over a stacked ``(n, samples)`` matrix."""
        values = _reduce(self.reducer, traces)
        return values <= self.bound if self.op == "<=" else values >= self.bound

    def margin(self, trace: np.ndarray) -> float:
        """Positive slack when satisfied, negative when violated."""
        value = float(_reduce(self.reducer, trace))
        return self.bound - value if self.op == "<=" else value - self.bound

    def margin_many(self, traces: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`margin` over stacked traces.

        Accepts any array whose **last** axis is the sample axis — a
        ``(n, samples)`` matrix gives per-configuration margins, a
        ``(K, n, samples)`` ensemble stack gives per-(member,
        configuration) margins — so the active-learning acquisition can
        estimate feasibility probabilities in one numpy call.
        """
        values = _reduce(self.reducer, traces)
        return self.bound - values if self.op == "<=" else values - self.bound

    def describe(self) -> str:
        return f"{self.reducer}({self.domain}) {self.op} {self.bound:g}"


@dataclass(frozen=True)
class Objective:
    """Minimize or maximize a reduced trace statistic."""

    domain: str
    reducer: str = "mean"
    maximize: bool = False

    def __post_init__(self):
        if self.reducer not in REDUCERS:
            raise ModelError(
                f"unknown reducer {self.reducer!r}; choose from "
                f"{sorted(REDUCERS)}"
            )

    def score(self, trace: np.ndarray) -> float:
        """Score where *lower is always better* (sign-folded)."""
        return float(self.score_many(trace))

    def score_many(self, traces: np.ndarray) -> np.ndarray:
        """Vectorized scores over a stacked ``(n, samples)`` matrix."""
        values = _reduce(self.reducer, traces)
        return -values if self.maximize else values

    def describe(self) -> str:
        verb = "maximize" if self.maximize else "minimize"
        return f"{verb} {self.reducer}({self.domain})"


@dataclass
class ExplorationResult:
    """Outcome of a predictive design-space search."""

    best_config: Optional[MachineConfig]
    best_score: float
    n_evaluated: int
    n_feasible: int
    ranked: List[Tuple[MachineConfig, float]] = field(default_factory=list)

    @property
    def feasible_fraction(self) -> float:
        return self.n_feasible / self.n_evaluated if self.n_evaluated else 0.0


class PredictiveExplorer:
    """Search a design space using fitted dynamics models.

    Parameters
    ----------
    space:
        The design space whose encoding the models were trained with.
    models:
        Domain name -> fitted :class:`WaveletNeuralPredictor`.  Every
        domain referenced by a constraint or objective must be present.
    """

    def __init__(self, space: DesignSpace,
                 models: Dict[str, WaveletNeuralPredictor]):
        self.space = space
        self.models = dict(models)
        for domain, model in self.models.items():
            if model.selected_indices_ is None:
                raise ModelError(f"model for domain {domain!r} is not fitted")

    # ------------------------------------------------------------------
    def candidate_grid(self, split: str = "train",
                       limit: Optional[int] = None,
                       seed: int = 0) -> List[MachineConfig]:
        """Candidate configurations: the full split grid, or a uniform
        sample of ``limit`` points when the grid is larger."""
        total = self.space.size(split)
        if limit is not None and total > limit:
            return self.space.sample_random(limit, split=split, seed=seed)
        level_sets = [p.levels(split) for p in self.space.parameters]
        configs = []
        for combo in itertools.product(*level_sets):
            values = dict(zip(self.space.names, combo))
            configs.append(self.space.config_from_values(values))
        return configs

    def predict_traces(self, configs: Sequence[MachineConfig],
                       domains: Iterable[str]) -> Dict[str, np.ndarray]:
        """Predicted dynamics per domain, shape ``(n_configs, n_samples)``."""
        X = self.space.encode_many(configs)
        out = {}
        for domain in domains:
            if domain not in self.models:
                raise ExperimentError(
                    f"no model for domain {domain!r}; have "
                    f"{sorted(self.models)}"
                )
            out[domain] = self.models[domain].predict(X)
        return out

    def search(self, objective: Objective,
               constraints: Sequence[Constraint] = (),
               candidates: Optional[Sequence[MachineConfig]] = None,
               limit: int = 4096, top_k: int = 10,
               seed: int = 0) -> ExplorationResult:
        """Find the best feasible configuration under the objective.

        Parameters
        ----------
        objective:
            What to optimize.
        constraints:
            Scenario constraints every feasible config must satisfy.
        candidates:
            Explicit candidate list; defaults to (a sample of) the train
            grid.
        limit:
            Candidate budget when sampling the grid.
        top_k:
            How many ranked feasible configs to return.
        """
        if candidates is None:
            candidates = self.candidate_grid(limit=limit, seed=seed)
        candidates = list(candidates)
        domains = {objective.domain} | {c.domain for c in constraints}
        # One stacked predict() per domain, then pure-numpy scoring: no
        # per-configuration Python work anywhere on this path.
        traces = self.predict_traces(candidates, domains)

        feasible = np.ones(len(candidates), dtype=bool)
        for c in constraints:
            feasible &= c.satisfied_many(traces[c.domain])
        scores = objective.score_many(traces[objective.domain])

        n_feasible = int(np.count_nonzero(feasible))
        idx = np.flatnonzero(feasible)
        order = idx[np.argsort(scores[idx], kind="stable")]
        if order.size:
            best_config = candidates[order[0]]
            best_score = float(scores[order[0]])
        else:
            best_config, best_score = None, float("inf")
        ranked = [(candidates[i], float(scores[i])) for i in order[:top_k]]
        return ExplorationResult(
            best_config=best_config,
            best_score=best_score,
            n_evaluated=len(candidates),
            n_feasible=n_feasible,
            ranked=ranked,
        )

    def sensitivity(self, base: MachineConfig, parameter: str,
                    domain: str, reducer: str = "mean") -> List[Tuple[float, float]]:
        """One-parameter sweep: predicted statistic at every train level.

        Returns ``[(level, value), ...]`` — the "what if we only grew the
        L2?" question answered from the model in microseconds.
        """
        if reducer not in REDUCERS:
            raise ModelError(f"unknown reducer {reducer!r}")
        p = self.space.parameter(parameter)
        configs = []
        for level in p.train_levels:
            values = self.space.values_of(base)
            values[parameter] = level
            configs.append(self.space.config_from_values(values))
        traces = self.predict_traces(configs, [domain])[domain]
        values = _reduce(reducer, traces)
        return [(float(level), float(value))
                for level, value in zip(p.train_levels, values)]
