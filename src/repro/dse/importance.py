"""Parameter-importance analysis from regression-tree splits (Figure 11).

Section 4 of the paper: "all input microarchitecture parameters were
ranked based on either split order or split frequency.  The
microarchitecture parameters which cause the most output variation tend
to be split earliest and most often in the constructed regression tree."

:func:`importance_star` aggregates split-order and split-frequency
scores over the per-coefficient RBF networks of a fitted
:class:`~repro.core.predictor.WaveletNeuralPredictor`, producing one
normalized "spoke length" per parameter — the paper's star-plot data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.predictor import WaveletNeuralPredictor
from repro.errors import ModelError

#: Supported importance measures.
MEASURES = ("order", "frequency")


@dataclass(frozen=True)
class StarPlotData:
    """Star-plot spokes for one (benchmark, domain) pair.

    ``scores`` are normalized so the longest spoke is 1 (the paper's
    star plots are relative magnitudes).
    """

    benchmark: str
    domain: str
    measure: str
    parameter_names: Tuple[str, ...]
    scores: np.ndarray

    def top_parameters(self, k: int = 3) -> List[str]:
        """The ``k`` most important parameter names, descending."""
        order = np.argsort(-self.scores, kind="stable")[:k]
        return [self.parameter_names[i] for i in order]

    def as_dict(self) -> Dict[str, float]:
        """Name -> score mapping."""
        return {n: float(s) for n, s in zip(self.parameter_names, self.scores)}


def importance_star(model: WaveletNeuralPredictor,
                    parameter_names: Sequence[str],
                    benchmark: str, domain: str,
                    measure: str = "order") -> StarPlotData:
    """Star-plot data from a fitted dynamics predictor.

    Parameters
    ----------
    model:
        A fitted :class:`WaveletNeuralPredictor`.
    parameter_names:
        Design-space parameter names in encoding order.
    measure:
        ``"order"`` (first-split position, Figure 11a) or
        ``"frequency"`` (split counts, Figure 11b).
    """
    if measure not in MEASURES:
        raise ModelError(f"measure must be one of {MEASURES}, got {measure!r}")
    imp = model.split_importance()[measure]
    names = tuple(parameter_names)
    if len(names) != imp.size:
        raise ModelError(
            f"{len(names)} parameter names for {imp.size} model features"
        )
    peak = imp.max()
    scores = imp / peak if peak > 0 else imp
    return StarPlotData(benchmark=benchmark, domain=domain, measure=measure,
                        parameter_names=names, scores=scores)


def importance_table(stars: Sequence[StarPlotData]) -> List[Tuple[str, str, str]]:
    """Summary rows ``(benchmark, domain, top-3 parameters)`` for reports."""
    rows = []
    for star in stars:
        rows.append((star.benchmark, star.domain,
                     ", ".join(star.top_parameters(3))))
    return rows
