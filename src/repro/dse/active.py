"""Closed-loop active-learning design-space exploration.

The paper trains its wavelet predictors on a *fixed* LHS sample chosen
blindly up front; every modern predictive-DSE loop (OneDSE's unified
metric-prediction search, MetaDSE's few-shot transfer) instead lets the
model's own uncertainty pick the next simulations.  This module closes
that loop on top of the streaming execution engine:

1. **Model** — a :class:`~repro.core.predictor.WaveletPredictorEnsemble`
   per metric domain (K wavelet predictors on bootstrap resamples)
   yields a mean *and* an uncertainty for every predicted trace.
2. **Acquisition** — candidate configurations are scored in one
   vectorized pass through the existing
   :data:`~repro.dse.explorer.REDUCERS`: expected improvement (``ei``),
   a lower-confidence bound (``ucb``), or pure uncertainty sampling
   (``max_variance``), each weighted by the probability of satisfying
   the scenario :class:`~repro.dse.explorer.Constraint` terms.
3. **Simulation** — the top-``batch_size`` candidates are submitted as
   **one** engine batch (:meth:`repro.engine.ExecutionEngine.submit`);
   the ensemble refit for the next round starts as soon as a
   ``fit_fraction`` prefix of the batch has drained through
   :meth:`~repro.engine.BatchHandle.as_completed`, so model fitting
   hides behind the simulation tail exactly like
   :meth:`~repro.dse.runner.SweepRunner.run_grid_streaming` hides
   per-benchmark fitting behind the sweep tail.

The search trajectory is **deterministic for a given seed and
independent of the executor**: the refit always consumes exactly the
first ``ceil(fit_fraction * batch)`` jobs *in job order* (completion
order only decides *when* the fit starts, never what it sees), every
random draw comes from one seeded generator consumed in a fixed order,
and the simulator jobs themselves are deterministic — so a distributed
16-host run walks bit-for-bit the same path as ``--jobs 1``.

Multi-objective mode (several :class:`~repro.dse.explorer.Objective`
terms) maintains a Pareto front over the *observed* scenario criteria
and steers acquisition with ParEGO-style random Chebyshev
scalarizations, so one search surfaces the whole CPI/power/AVF
trade-off curve instead of a single winner.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._validation import resolve_settings, rng_from_seed
from repro.core.predictor import PredictorSettings, WaveletPredictorEnsemble
from repro.dse.dataset import DynamicsDataset
from repro.dse.explorer import Constraint, Objective
from repro.dse.lhs import sample_candidate_pool, sample_train_configs
from repro.dse.space import DesignSpace, paper_design_space
from repro.errors import ExperimentError, ModelError
from repro.uarch.params import MachineConfig

#: Acquisition strategies accepted by :class:`ActiveSearchSettings`.
STRATEGIES = ("ei", "ucb", "max_variance")

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)
_erf = np.vectorize(math.erf, otypes=[float])


def _norm_cdf(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + _erf(np.asarray(z, dtype=float) / _SQRT2))


def _norm_pdf(z: np.ndarray) -> np.ndarray:
    z = np.asarray(z, dtype=float)
    return _INV_SQRT_2PI * np.exp(-0.5 * z * z)


def pareto_front(scores: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows of a *minimization* score matrix.

    A row dominates another when it is no worse in every column and
    strictly better in at least one.  Returned indices are sorted
    ascending, so the front is deterministic for a given matrix.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise ModelError(
            f"scores must be a 2-D (points, objectives) matrix, got shape "
            f"{scores.shape}"
        )
    n = scores.shape[0]
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        no_worse = np.all(scores <= scores[i], axis=1)
        better = np.any(scores < scores[i], axis=1)
        if np.any(no_worse & better & keep):
            keep[i] = False
    return np.flatnonzero(keep)


@dataclass(frozen=True)
class ActiveSearchSettings:
    """Knobs of the sequential model-based optimization loop.

    Parameters
    ----------
    budget:
        Total simulation budget, *including* the initial design.
    batch_size:
        Simulations submitted per acquisition round (one engine batch).
    n_init:
        Size of the seed LHS design fitted before the first acquisition.
    strategy:
        ``"ei"`` (expected improvement, the default), ``"ucb"``
        (lower-confidence bound with exploration weight ``kappa``) or
        ``"max_variance"`` (pure uncertainty sampling — improves the
        model everywhere instead of optimizing).
    kappa:
        Exploration weight of the ``ucb`` strategy.
    n_members:
        Bootstrap ensemble size per metric domain.
    candidate_pool:
        Unsimulated configurations scored per round.
    fit_fraction:
        Fraction of a round's batch whose results the overlapped refit
        consumes; the remaining tail joins the training set one round
        later (the latency-hiding trade).  ``1.0`` disables the overlap.
    patience, tol:
        Convergence rule: stop after ``patience`` consecutive
        acquisition rounds that fail to improve the incumbent by more
        than ``tol`` (multi-objective: that fail to change the Pareto
        front).  ``patience=0`` disables early stopping.
    seed:
        Master seed; the whole trajectory is deterministic given it.
    n_lhs_matrices:
        Candidate LHS matrices for the initial design (best L2-star
        discrepancy wins, as in the paper's sampling step).
    predictor:
        Hyper-parameters shared by every ensemble member.
    """

    budget: int = 160
    batch_size: int = 16
    n_init: int = 40
    strategy: str = "ei"
    kappa: float = 1.0
    n_members: int = 4
    candidate_pool: int = 2048
    fit_fraction: float = 0.75
    patience: int = 3
    tol: float = 1e-3
    seed: int = 0
    n_lhs_matrices: int = 10
    predictor: PredictorSettings = field(default_factory=PredictorSettings)

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        if self.budget < 1:
            raise ModelError(f"budget must be >= 1, got {self.budget}")
        if self.batch_size < 1:
            raise ModelError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.n_init < 8:
            raise ModelError(
                f"n_init must be >= 8 (the ensembles need a usable seed "
                f"design), got {self.n_init}"
            )
        if self.strategy not in STRATEGIES:
            raise ModelError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.kappa <= 0:
            raise ModelError(f"kappa must be > 0, got {self.kappa}")
        if self.candidate_pool < self.batch_size:
            raise ModelError(
                f"candidate_pool ({self.candidate_pool}) must be >= "
                f"batch_size ({self.batch_size})"
            )
        if not 0.0 < self.fit_fraction <= 1.0:
            raise ModelError(
                f"fit_fraction must be in (0, 1], got {self.fit_fraction}"
            )
        if self.patience < 0:
            raise ModelError(f"patience must be >= 0, got {self.patience}")
        if self.tol < 0:
            raise ModelError(f"tol must be >= 0, got {self.tol}")
        self.predictor.validate()


@dataclass(frozen=True)
class RoundRecord:
    """Bookkeeping for one loop round (round 0 is the initial design)."""

    round_index: int
    strategy: str
    n_new: int
    n_simulations: int
    n_feasible: int
    best_score: float
    fit_seconds: float
    fit_overlapped: bool


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated observed design in multi-objective mode."""

    config: MachineConfig
    scores: Tuple[float, ...]  #: sign-folded (lower-better) per objective


@dataclass
class ActiveSearchResult:
    """Outcome of :meth:`ActiveSearch.run`.

    ``best_config``/``best_score`` track the feasible incumbent under
    the first objective; ``pareto`` holds the full non-dominated set
    when several objectives were given (empty otherwise).  ``observed``
    is a regular :class:`~repro.dse.dataset.DynamicsDataset` over every
    simulated configuration, so the search's by-product is exactly the
    training set a fixed sweep would have produced — ready for
    :class:`~repro.dse.explorer.PredictiveExplorer` post-hoc analysis.
    """

    best_config: Optional[MachineConfig]
    best_score: float
    n_simulations: int
    rounds: List[RoundRecord]
    observed: DynamicsDataset
    pareto: List[ParetoPoint]
    converged: bool
    reason: str

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def describe(self) -> str:
        lines = [
            f"{self.n_simulations} simulations over {self.n_rounds} rounds "
            f"({self.reason})",
        ]
        if self.best_config is not None:
            lines.append(f"best feasible score: {self.best_score:.4f}")
        else:
            lines.append("no feasible configuration found")
        if self.pareto:
            lines.append(f"Pareto front: {len(self.pareto)} designs")
        return "\n".join(lines)


class ActiveSearch:
    """Sequential model-based optimization over a design space.

    Parameters
    ----------
    runner:
        The :class:`~repro.dse.runner.SweepRunner` providing job
        construction, metric domains and the execution engine (and with
        it parallel / cached / distributed simulation for free).
    objectives:
        One :class:`~repro.dse.explorer.Objective` or a sequence of
        them; more than one enables multi-objective (Pareto) mode.
    constraints:
        Scenario constraints every acceptable design must satisfy.
    settings:
        An :class:`ActiveSearchSettings`; keyword arguments may be
        passed directly instead.
    space:
        Design space to search; defaults to the paper's Table 2 space.
    """

    def __init__(self, runner,
                 objectives: Union[Objective, Sequence[Objective]],
                 constraints: Sequence[Constraint] = (),
                 settings: Optional[ActiveSearchSettings] = None,
                 space: Optional[DesignSpace] = None,
                 **kwargs):
        settings = resolve_settings(ActiveSearchSettings, settings,
                                    kwargs, ModelError)
        if isinstance(objectives, Objective):
            objectives = (objectives,)
        self.objectives: Tuple[Objective, ...] = tuple(objectives)
        if not self.objectives:
            raise ModelError("at least one objective is required")
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)
        self.runner = runner
        self.settings = settings
        self.space = space or paper_design_space()
        self.domains = tuple(dict.fromkeys(
            [o.domain for o in self.objectives]
            + [c.domain for c in self.constraints]))
        missing = [d for d in self.domains if d not in runner.domains]
        if missing:
            raise ExperimentError(
                f"runner does not record domains {missing}; it records "
                f"{tuple(runner.domains)}"
            )
        if settings.predictor.n_coefficients > runner.n_samples:
            raise ModelError(
                f"predictor retains {settings.predictor.n_coefficients} "
                f"coefficients but the runner traces only "
                f"{runner.n_samples} samples"
            )

    # ------------------------------------------------------------------
    def run(self, workload,
            init_configs: Optional[Sequence[MachineConfig]] = None,
            ) -> ActiveSearchResult:
        """Run the closed loop until budget, convergence, or exhaustion.

        Parameters
        ----------
        workload:
            Benchmark name or :class:`~repro.workloads.phases.WorkloadModel`.
        init_configs:
            Explicit initial design (truncated to the budget); defaults
            to a fresh best-discrepancy LHS of ``n_init`` points.  Pass
            the prefix of a fixed LHS sweep to compare both strategies
            from an identical starting state.
        """
        s = self.settings
        rng = rng_from_seed(s.seed)

        # Observed state, grown in job order every round.
        configs: List[MachineConfig] = []
        keys = set()
        rows: Dict[str, List[np.ndarray]] = {d: [] for d in self.runner.domains}
        true_scores: List[List[float]] = []   # per config, per objective
        feasible: List[bool] = []

        ensembles: Dict[str, WaveletPredictorEnsemble] = {}
        rounds: List[RoundRecord] = []
        benchmark: Optional[str] = None
        best_score = math.inf
        best_config: Optional[MachineConfig] = None
        stall = 0
        converged = False
        reason = "budget"
        front_keys: frozenset = frozenset()

        round_index = 0
        while len(configs) < s.budget:
            remaining = s.budget - len(configs)
            if round_index == 0:
                if init_configs is not None:
                    chosen = list(init_configs)[:remaining]
                else:
                    chosen = sample_train_configs(
                        self.space, min(s.n_init, remaining),
                        s.n_lhs_matrices, s.seed)
                strategy = "init"
                if not chosen:
                    raise ModelError("initial design is empty")
            else:
                chosen = self._select_batch(
                    ensembles, min(s.batch_size, remaining), rng, keys,
                    np.array(true_scores, dtype=float),
                    np.array(feasible, dtype=bool))
                strategy = s.strategy
                if not chosen:
                    reason = "exhausted"
                    break

            jobs = self.runner.jobs_for(workload, chosen)
            benchmark = jobs[0].benchmark
            handle = self.runner.engine.submit(jobs)

            # Overlapped refit: consume exactly the first `cutoff` jobs
            # (in job order) the moment they have all resolved — the
            # executor keeps simulating the tail while the main process
            # fits.  The tail joins the training set next round.
            will_continue = len(configs) + len(chosen) < s.budget
            cutoff = max(1, math.ceil(s.fit_fraction * len(jobs)))
            results: List = [None] * len(jobs)
            prefix = 0
            fitted = False
            fit_overlapped = False
            fit_seconds = 0.0
            for index, result in handle.as_completed():
                results[index] = result
                while prefix < len(jobs) and results[prefix] is not None:
                    prefix += 1
                if will_continue and not fitted and prefix >= cutoff:
                    extra = [(chosen[i], results[i]) for i in range(cutoff)]
                    start = time.perf_counter()
                    ensembles = self._fit(configs, rows, extra, rng)
                    fit_seconds = time.perf_counter() - start
                    fitted = True
                    fit_overlapped = handle.done < len(jobs)

            # Fold the whole round into the observed state, job order.
            for config, result in zip(chosen, results):
                configs.append(config)
                keys.add(config.key())
                for d in self.runner.domains:
                    rows[d].append(np.asarray(result.trace(d), dtype=float))
                scores = [o.score(result.trace(o.domain))
                          for o in self.objectives]
                ok = all(c.satisfied(result.trace(c.domain))
                         for c in self.constraints)
                true_scores.append(scores)
                feasible.append(ok)
                if ok and scores[0] < best_score:
                    best_score = scores[0]
                    best_config = config

            n_feasible = int(np.count_nonzero(feasible))
            rounds.append(RoundRecord(
                round_index=round_index, strategy=strategy,
                n_new=len(chosen), n_simulations=len(configs),
                n_feasible=n_feasible, best_score=best_score,
                fit_seconds=round(fit_seconds, 6),
                fit_overlapped=fit_overlapped))

            # Convergence: incumbent stagnation (single objective) or a
            # frozen Pareto front (multi-objective), measured only over
            # acquisition rounds — the init round sets the baseline.
            # While nothing feasible has been observed the rule is
            # suspended entirely: the acquisition is still hunting for
            # a first feasible design, and "no incumbent improved" says
            # nothing about that hunt (only the budget bounds it).
            if len(self.objectives) > 1:
                new_front = self._front_keys(
                    np.array(true_scores, dtype=float),
                    np.array(feasible, dtype=bool), configs)
                improved = new_front != front_keys
                front_keys = new_front
            else:
                previous = (rounds[-2].best_score if len(rounds) > 1
                            else math.inf)
                improved = best_score < previous - s.tol
            if round_index > 0 and n_feasible > 0:
                stall = 0 if improved else stall + 1
                if s.patience and stall >= s.patience:
                    converged = True
                    reason = "converged"
                    round_index += 1
                    break
            round_index += 1

        observed = DynamicsDataset(
            benchmark=benchmark or "", space=self.space,
            configs=list(configs),
            traces={d: (np.vstack(r) if r
                        else np.empty((0, self.runner.n_samples)))
                    for d, r in rows.items()},
        )
        scores_arr = np.array(true_scores, dtype=float)
        feas_arr = np.array(feasible, dtype=bool)
        pareto: List[ParetoPoint] = []
        if len(self.objectives) > 1 and np.any(feas_arr):
            idx = np.flatnonzero(feas_arr)
            for j in idx[pareto_front(scores_arr[idx])]:
                pareto.append(ParetoPoint(
                    config=configs[j],
                    scores=tuple(float(v) for v in scores_arr[j])))
        return ActiveSearchResult(
            best_config=best_config, best_score=best_score,
            n_simulations=len(configs), rounds=rounds, observed=observed,
            pareto=pareto, converged=converged, reason=reason)

    # ------------------------------------------------------------------
    def _fit(self, configs: List[MachineConfig],
             rows: Dict[str, List[np.ndarray]],
             extra: List[Tuple[MachineConfig, object]],
             rng: np.random.Generator,
             ) -> Dict[str, WaveletPredictorEnsemble]:
        """Fit one ensemble per needed domain on observed + ``extra``."""
        all_configs = configs + [c for c, _ in extra]
        X = self.space.encode_many(all_configs)
        seed = int(rng.integers(2 ** 31))
        out: Dict[str, WaveletPredictorEnsemble] = {}
        for domain in self.domains:
            traces = rows[domain] + [
                np.asarray(r.trace(domain), dtype=float) for _, r in extra]
            out[domain] = WaveletPredictorEnsemble(
                n_members=self.settings.n_members,
                settings=self.settings.predictor,
                seed=seed,
            ).fit(X, np.vstack(traces))
        return out

    def _front_keys(self, scores: np.ndarray, feasible: np.ndarray,
                    configs: List[MachineConfig]) -> frozenset:
        if not np.any(feasible):
            return frozenset()
        idx = np.flatnonzero(feasible)
        return frozenset(configs[j].key()
                         for j in idx[pareto_front(scores[idx])])

    # ------------------------------------------------------------------
    def _select_batch(self, ensembles: Dict[str, WaveletPredictorEnsemble],
                      batch: int, rng: np.random.Generator, keys,
                      true_scores: np.ndarray, feasible: np.ndarray,
                      ) -> List[MachineConfig]:
        """Top-``batch`` candidates under the acquisition strategy.

        One ``member_predictions`` call per domain and pure-numpy
        scoring afterwards: the whole pool is priced without per-config
        Python work, exactly like
        :meth:`~repro.dse.explorer.PredictiveExplorer.search`.
        """
        s = self.settings
        pool_seed = int(rng.integers(2 ** 31))
        weights = None
        if len(self.objectives) > 1:
            raw = -np.log(rng.uniform(1e-12, 1.0, size=len(self.objectives)))
            weights = raw / raw.sum()
        candidates = sample_candidate_pool(
            self.space, s.candidate_pool, pool_seed, exclude_keys=keys)
        if not candidates:
            return []
        X = self.space.encode_many(candidates)
        preds = {d: ensembles[d].member_predictions(X) for d in self.domains}

        pfeas = np.ones(len(candidates), dtype=float)
        for c in self.constraints:
            margins = c.margin_many(preds[c.domain])        # (K, n)
            mu, sd = margins.mean(axis=0), margins.std(axis=0)
            pfeas *= np.where(sd < 1e-12, (mu > 0).astype(float),
                              _norm_cdf(mu / np.maximum(sd, 1e-12)))

        mu, sd, best = self._objective_posterior(preds, weights,
                                                 true_scores, feasible)
        acq = self._acquisition(mu, sd, best, pfeas)
        order = np.argsort(-acq, kind="stable")[:batch]
        return [candidates[i] for i in order]

    def _objective_posterior(self, preds, weights, true_scores, feasible):
        """Per-candidate (mean, std, incumbent) of the acquisition target.

        Single objective: the raw sign-folded score.  Multi-objective:
        a ParEGO-style Chebyshev scalarization under this round's random
        weights, normalized by the observed score ranges so no domain
        dominates by unit alone; the incumbent is the best *observed
        feasible* value under the same scalarization.
        """
        if weights is None:
            member = self.objectives[0].score_many(
                preds[self.objectives[0].domain])            # (K, n)
            mu, sd = member.mean(axis=0), member.std(axis=0)
            if np.any(feasible):
                best = float(true_scores[feasible, 0].min())
            else:
                best = None
            return mu, sd, best
        lo = true_scores.min(axis=0)
        span = np.maximum(true_scores.max(axis=0) - lo, 1e-12)
        member_norm = []
        for j, objective in enumerate(self.objectives):
            scores = objective.score_many(preds[objective.domain])  # (K, n)
            member_norm.append(weights[j] * (scores - lo[j]) / span[j])
        stacked = np.stack(member_norm)                       # (m, K, n)
        scalar = stacked.max(axis=0) + 0.05 * stacked.sum(axis=0)
        mu, sd = scalar.mean(axis=0), scalar.std(axis=0)
        if np.any(feasible):
            obs = (true_scores[feasible] - lo[None, :]) / span[None, :]
            weighted = obs * weights[None, :]
            best = float((weighted.max(axis=1)
                          + 0.05 * weighted.sum(axis=1)).min())
        else:
            best = None
        return mu, sd, best

    def _acquisition(self, mu: np.ndarray, sd: np.ndarray,
                     best: Optional[float],
                     pfeas: np.ndarray) -> np.ndarray:
        """Higher-is-better acquisition scores for one candidate pool."""
        strategy = self.settings.strategy
        if strategy == "max_variance":
            # Pure uncertainty sampling: improve the model everywhere it
            # is unsure, objective and feasibility notwithstanding.
            return sd
        if best is None:
            # No feasible incumbent yet: hunt for feasibility first,
            # preferring uncertain candidates among equally likely ones.
            return pfeas * (1.0 + sd)
        if strategy == "ei":
            gap = best - mu
            safe_sd = np.maximum(sd, 1e-12)
            z = gap / safe_sd
            ei = gap * _norm_cdf(z) + safe_sd * _norm_pdf(z)
            ei = np.where(sd < 1e-12, np.maximum(gap, 0.0), ei)
            return ei * pfeas
        # "ucb" (a lower-confidence bound, since scores are minimized):
        # optimistic value mu - kappa*sd, shifted so the best candidate
        # scores highest and feasibility can weigh multiplicatively.
        lcb = mu - self.settings.kappa * sd
        return (lcb.max() - lcb + 1e-12) * pfeas


def run_active_search(runner, workload,
                      objectives: Union[Objective, Sequence[Objective]],
                      constraints: Sequence[Constraint] = (),
                      settings: Optional[ActiveSearchSettings] = None,
                      space: Optional[DesignSpace] = None,
                      init_configs: Optional[Sequence[MachineConfig]] = None,
                      **kwargs) -> ActiveSearchResult:
    """Functional entry point: build an :class:`ActiveSearch` and run it."""
    search = ActiveSearch(runner, objectives, constraints=constraints,
                          settings=settings, space=space, **kwargs)
    return search.run(workload, init_configs=init_configs)
