"""Latin Hypercube Sampling with L2-star-discrepancy matrix selection.

Section 3 of the paper: "we use a variant of Latin Hypercube Sampling
(LHS) as our sampling strategy since it provides better coverage compared
to a naive random sampling scheme.  We generate multiple LHS matrices and
use a space filling metric called L2-star discrepancy ... to find the
representative design space that has the lowest value of L2-star
discrepancy."

:func:`latin_hypercube` produces a stratified matrix in the unit cube,
:func:`l2_star_discrepancy` implements Warnock's closed-form formula, and
:func:`best_lhs_matrix` generates ``n_matrices`` candidates and keeps the
best.  :func:`sample_train_configs` maps the winning matrix onto the
discrete Table 2 levels.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro._validation import as_2d_float_array, rng_from_seed
from repro.errors import SamplingError
from repro.dse.space import DesignSpace
from repro.uarch.params import MachineConfig


def latin_hypercube(n: int, d: int, seed=0) -> np.ndarray:
    """One LHS matrix of ``n`` points in ``[0, 1)^d``.

    Each column is a random permutation of the ``n`` strata, jittered
    uniformly within each stratum — the classic LHS construction.
    """
    if n < 1 or d < 1:
        raise SamplingError(f"n and d must be >= 1, got n={n}, d={d}")
    rng = rng_from_seed(seed)
    out = np.empty((n, d), dtype=float)
    for j in range(d):
        perm = rng.permutation(n)
        out[:, j] = (perm + rng.uniform(size=n)) / n
    return out


def l2_star_discrepancy(points) -> float:
    """Warnock's closed-form L2-star discrepancy of points in ``[0, 1]^d``.

    ``D^2 = 3^-d  -  (2/n) * sum_i prod_k (1 - x_ik^2)/2
                  +  (1/n^2) * sum_ij prod_k (1 - max(x_ik, x_jk))``

    Lower is better (more uniform coverage of the unit cube).
    """
    x = as_2d_float_array(points, name="points")
    if np.any(x < 0.0) or np.any(x > 1.0):
        raise SamplingError("points must lie in the unit cube [0, 1]^d")
    n, d = x.shape
    term1 = 3.0 ** (-d)
    term2 = (2.0 / n) * np.sum(np.prod((1.0 - x * x) / 2.0, axis=1))
    # Pairwise product term, vectorized over pairs via broadcasting.
    maxes = np.maximum(x[:, None, :], x[None, :, :])   # (n, n, d)
    term3 = np.sum(np.prod(1.0 - maxes, axis=2)) / (n * n)
    d2 = term1 - term2 + term3
    return float(np.sqrt(max(d2, 0.0)))


def best_lhs_matrix(n: int, d: int, n_matrices: int = 20, seed=0) -> np.ndarray:
    """Best-of-``n_matrices`` LHS matrix under L2-star discrepancy."""
    if n_matrices < 1:
        raise SamplingError(f"n_matrices must be >= 1, got {n_matrices}")
    rng = rng_from_seed(seed)
    best, best_score = None, np.inf
    for _ in range(n_matrices):
        candidate = latin_hypercube(n, d, rng)
        score = l2_star_discrepancy(candidate)
        if score < best_score:
            best, best_score = candidate, score
    return best


def matrix_to_level_indices(matrix: np.ndarray, level_counts) -> np.ndarray:
    """Map unit-cube coordinates onto discrete level indices.

    Coordinate ``u`` in column ``j`` maps to ``floor(u * L_j)`` — the LHS
    stratification then guarantees each level is hit near-uniformly often.
    """
    mat = as_2d_float_array(matrix, name="matrix")
    counts = np.asarray(level_counts, dtype=int)
    if counts.size != mat.shape[1]:
        raise SamplingError(
            f"level_counts has {counts.size} entries for {mat.shape[1]} columns"
        )
    idx = np.floor(mat * counts[None, :]).astype(int)
    return np.clip(idx, 0, counts - 1)


def sample_train_configs(space: DesignSpace, n: int = 200,
                         n_matrices: int = 20, seed: int = 0,
                         ) -> List[MachineConfig]:
    """The paper's training-set construction: best-discrepancy LHS over
    the train levels of ``space`` (defaults match the paper: 200 points).

    Duplicate configurations (possible because the continuous matrix is
    quantized onto few levels) are resampled from leftover strata so the
    result contains ``n`` *distinct* design points.
    """
    matrix = best_lhs_matrix(n, space.n_parameters, n_matrices, seed)
    counts = [len(p.levels("train")) for p in space.parameters]
    indices = matrix_to_level_indices(matrix, counts)
    configs: List[MachineConfig] = []
    seen = set()
    rng = rng_from_seed(seed + 1)
    for row in indices:
        key = tuple(int(v) for v in row)
        attempts = 0
        while key in seen:
            attempts += 1
            if attempts > 10_000:
                raise SamplingError(
                    f"could not find {n} distinct configurations in the train grid"
                )
            key = tuple(int(rng.integers(c)) for c in counts)
        seen.add(key)
        configs.append(space.config_from_level_indices(list(key), "train"))
    return configs


def sample_test_configs(space: DesignSpace, n: int = 50,
                        seed: int = 1) -> List[MachineConfig]:
    """The paper's 50-point independent random test set over test levels."""
    return space.sample_random(n, split="test", seed=seed, unique=True)


def sample_candidate_pool(space: DesignSpace, n: int, seed,
                          exclude_keys=(),
                          split: str = "train") -> List[MachineConfig]:
    """``n`` distinct configurations avoiding already-simulated designs.

    The active-learning loop (:mod:`repro.dse.active`) re-scores a fresh
    candidate pool every round; points it has already paid a simulation
    for are excluded by :meth:`~repro.uarch.params.MachineConfig.key` so
    the acquisition budget is never spent re-discovering known designs.
    When the split grid minus the exclusions holds fewer than ``n``
    points, every remaining point is returned (the pool simply shrinks
    as the loop exhausts a small space).
    """
    exclude = set(exclude_keys)
    grid = space.size(split)
    target = min(n, grid)
    # Oversample, then filter: the exclusion set is tiny relative to the
    # grid, so one draw almost always suffices; the loop guards the
    # near-exhausted case.  No arithmetic on ``exclude`` decides
    # termination — excluded keys need not lie in this split's grid
    # (e.g. an explicit off-grid initial design), so the only sound
    # exhaustion signal is a full-grid draw yielding nothing new.
    rng = rng_from_seed(seed)
    out: List[MachineConfig] = []
    seen = set(exclude)
    for _ in range(64):
        draw = min(target - len(out) + len(exclude), grid)
        for config in space.sample_random(draw, split=split, seed=rng,
                                          unique=True):
            key = config.key()
            if key in seen:
                continue
            seen.add(key)
            out.append(config)
            if len(out) == target:
                return out
        if draw == grid:
            # The whole grid was enumerated: everything missing is
            # excluded, so the pool is simply smaller than asked for.
            return out
    raise SamplingError(
        f"could not draw {target} candidates distinct from "
        f"{len(exclude)} excluded configurations"
    )
