"""Dataset container for workload-dynamics sweeps.

A :class:`DynamicsDataset` holds, for one benchmark, the simulated
dynamics traces of every sampled configuration in every metric domain,
plus the encoded design matrix — everything the predictive models need
for fitting and evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.dse.space import DesignSpace
from repro.uarch.params import MachineConfig


@dataclass
class DynamicsDataset:
    """Traces and design vectors for one benchmark over many configs.

    Attributes
    ----------
    benchmark:
        Benchmark name.
    space:
        The design space the configurations were drawn from (used for
        encoding).
    configs:
        The sampled machine configurations.
    traces:
        Domain name -> array of shape ``(n_configs, n_samples)``.
        Datasets assembled from a parallel sweep may hold **read-only
        zero-copy views** into the engine's shared-memory arena (see
        :mod:`repro.engine.shm`); call :meth:`materialize` for private
        writable copies.
    """

    benchmark: str
    space: DesignSpace
    configs: List[MachineConfig]
    traces: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        n = len(self.configs)
        for domain, arr in self.traces.items():
            if arr.shape[0] != n:
                raise ConfigurationError(
                    f"domain {domain!r}: {arr.shape[0]} trace rows for "
                    f"{n} configurations"
                )

    # ------------------------------------------------------------------
    @property
    def n_configs(self) -> int:
        return len(self.configs)

    @property
    def n_samples(self) -> int:
        if not self.traces:
            raise ConfigurationError("dataset has no traces")
        return next(iter(self.traces.values())).shape[1]

    @property
    def domains(self) -> Sequence[str]:
        return tuple(sorted(self.traces))

    def design_matrix(self) -> np.ndarray:
        """Encoded design vectors, shape ``(n_configs, n_parameters)``."""
        return self.space.encode_many(self.configs)

    def domain(self, name: str) -> np.ndarray:
        """Trace matrix for one domain."""
        if name not in self.traces:
            raise ConfigurationError(
                f"domain {name!r} not in dataset; have {sorted(self.traces)}"
            )
        return self.traces[name]

    def materialize(self) -> "DynamicsDataset":
        """A dataset whose trace matrices own their memory.

        Traces assembled as zero-copy views keep the whole batch's
        shared-memory arena alive; materializing copies them out so the
        arena can be reclaimed (e.g. before stashing a dataset for the
        rest of a long session).  Returns ``self`` when every matrix
        already owns its data.
        """
        if all(arr.base is None for arr in self.traces.values()):
            return self
        return DynamicsDataset(
            benchmark=self.benchmark, space=self.space,
            configs=list(self.configs),
            traces={d: np.array(arr) for d, arr in self.traces.items()},
        )

    def subset(self, indices: Sequence[int]) -> "DynamicsDataset":
        """A new dataset restricted to the given configuration indices."""
        idx = list(indices)
        return DynamicsDataset(
            benchmark=self.benchmark,
            space=self.space,
            configs=[self.configs[i] for i in idx],
            traces={d: arr[idx] for d, arr in self.traces.items()},
        )

    # ------------------------------------------------------------------
    # Persistence (npz + reconstructable configs)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialize traces + configuration values to an ``.npz`` file."""
        path = Path(path)
        config_values = np.array(
            [[getattr(c, name) for name in self.space.names if name != "dvm"]
             for c in self.configs], dtype=float,
        )
        dvm_flags = np.array([c.dvm_enabled for c in self.configs], dtype=bool)
        np.savez_compressed(
            path,
            benchmark=np.array(self.benchmark),
            param_names=np.array([n for n in self.space.names if n != "dvm"]),
            config_values=config_values,
            dvm_flags=dvm_flags,
            **{f"trace_{d}": arr for d, arr in self.traces.items()},
        )

    @classmethod
    def load(cls, path, space: Optional[DesignSpace] = None) -> "DynamicsDataset":
        """Load a dataset saved by :meth:`save`."""
        from repro.dse.space import paper_design_space

        data = np.load(Path(path), allow_pickle=False)
        space = space or paper_design_space()
        names = [str(n) for n in data["param_names"]]
        configs = []
        for row, dvm in zip(data["config_values"], data["dvm_flags"]):
            values = {name: val for name, val in zip(names, row)}
            cfg = space.config_from_values(values)
            if dvm:
                cfg = cfg.with_dvm(True)
            configs.append(cfg)
        traces = {
            key[len("trace_"):]: data[key]
            for key in data.files if key.startswith("trace_")
        }
        return cls(benchmark=str(data["benchmark"]), space=space,
                   configs=configs, traces=traces)
