"""Shared argument-validation helpers.

These helpers keep validation messages consistent across the package and
make the public API fail loudly (with :mod:`repro.errors` exceptions) on
malformed input instead of producing silently wrong results.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import TransformError


def as_1d_float_array(data: Iterable[float], name: str = "data") -> np.ndarray:
    """Coerce ``data`` to a 1-D ``float64`` array, rejecting other shapes.

    Parameters
    ----------
    data:
        Any iterable of numbers (list, tuple, ndarray, generator).
    name:
        Name used in error messages.
    """
    arr = np.asarray(list(data) if not isinstance(data, np.ndarray) else data,
                     dtype=float)
    if arr.ndim != 1:
        raise TransformError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise TransformError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise TransformError(f"{name} contains non-finite values")
    return arr


def as_2d_float_array(data, name: str = "data") -> np.ndarray:
    """Coerce ``data`` to a 2-D ``float64`` array, rejecting other shapes."""
    arr = np.asarray(data, dtype=float)
    if arr.ndim != 2:
        raise TransformError(f"{name} must be two-dimensional, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise TransformError(f"{name} contains non-finite values")
    return arr


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def require_power_of_two(n: int, name: str = "length") -> None:
    """Raise :class:`TransformError` unless ``n`` is a power of two."""
    if not is_power_of_two(n):
        raise TransformError(
            f"{name} must be a positive power of two, got {n}"
        )


def require_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_in(value, options: Sequence, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``options``."""
    if value not in options:
        raise ValueError(
            f"{name} must be one of {sorted(map(str, options))}, got {value!r}"
        )


def resolve_settings(settings_cls, settings, kwargs, error_cls):
    """Resolve the ``settings``-object-or-keyword-arguments convention.

    Several configurable classes (:class:`repro.core.predictor.
    WaveletNeuralPredictor` and friends) accept either a prebuilt,
    immutable settings dataclass or loose keyword arguments — never
    both.  This helper owns that resolution: build ``settings_cls``
    from ``kwargs`` when no object is given, reject mixing the two
    (raising ``error_cls``), and return the validated settings.
    """
    if settings is None:
        settings = settings_cls(**kwargs)
    elif kwargs:
        raise error_cls(
            "pass either a settings object or keyword arguments, not both"
        )
    settings.validate()
    return settings


def rng_from_seed(seed) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a seed or pass through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def stable_hash(*parts) -> int:
    """Deterministic 64-bit hash of a tuple of primitives.

    ``hash()`` is salted per interpreter run for strings, so it cannot be
    used to derive reproducible simulation seeds.  This helper implements a
    small FNV-1a over the ``repr`` of the parts instead.
    """
    acc = 0xCBF29CE484222325
    for part in parts:
        for byte in repr(part).encode("utf8"):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc
