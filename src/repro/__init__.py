"""repro — workload-dynamics-aware microarchitecture design space exploration.

A faithful reproduction of Cho, Zhang & Li, *Informed Microarchitecture
Design Space Exploration using Workload Dynamics* (MICRO 2007): wavelet
multiresolution decomposition + per-coefficient RBF neural networks that
predict a workload's CPI / power / AVF *time series* at unexplored
design points, plus every substrate the paper depends on (superscalar
simulator, Wattch-style power model, ACE/AVF analysis, synthetic SPEC
CPU 2000 workloads, LHS design-space sampling, and the DVM case study).

Quick start
-----------
>>> import repro
>>> sim = repro.Simulator()
>>> result = sim.run("gcc", repro.baseline_config(), n_samples=128)
>>> result.trace("cpi").shape
(128,)

Fit a dynamics predictor over a sampled design space::

    space = repro.paper_design_space()
    runner = repro.SweepRunner()
    train, test = runner.run_train_test("gcc")
    model = repro.WaveletNeuralPredictor(n_coefficients=16)
    model.fit(train.design_matrix(), train.domain("cpi"))
    errors = repro.pooled_nmse_percent(
        test.domain("cpi"), model.predict(test.design_matrix()))

See ``examples/`` for complete scripts and ``benchmarks/`` for the
drivers that regenerate every table and figure of the paper.
"""

from repro.core.predictor import (
    PredictorSettings,
    WaveletNeuralPredictor,
    WaveletPredictorEnsemble,
)
from repro.core.metrics import (
    directional_symmetry,
    nmse_percent,
    pooled_nmse_percent,
    quartile_thresholds,
)
from repro.core.wavelets import MultiresolutionAnalysis, dwt, haar_dwt, haar_idwt, idwt
from repro.core.rbf import RBFNetwork
from repro.core.regression_tree import RegressionTree
from repro.dse.active import (
    ActiveSearch,
    ActiveSearchResult,
    ActiveSearchSettings,
    run_active_search,
)
from repro.dse.explorer import (
    Constraint,
    Objective,
    PredictiveExplorer,
    register_reducer,
)
from repro.dse.lhs import l2_star_discrepancy, latin_hypercube
from repro.engine import (
    ExecutionEngine,
    LocalExecutor,
    ParallelExecutor,
    ResultCache,
    SimJob,
    create_engine,
)
from repro.dse.runner import SweepPlan, SweepRunner
from repro.dse.space import DesignSpace, paper_design_space
from repro.dse.dataset import DynamicsDataset
from repro.power.thermal import DTMPolicy, ThermalModel
from repro.reliability.dvm import DVMPolicy
from repro.uarch.params import MachineConfig, baseline_config
from repro.uarch.simulator import SimulationResult, Simulator
from repro.workloads.spec2000 import BENCHMARK_NAMES, get_benchmark, list_benchmarks

__version__ = "1.0.0"

__all__ = [
    # Core predictive models
    "WaveletNeuralPredictor",
    "WaveletPredictorEnsemble",
    "PredictorSettings",
    "RBFNetwork",
    "RegressionTree",
    # Wavelets
    "MultiresolutionAnalysis",
    "dwt",
    "idwt",
    "haar_dwt",
    "haar_idwt",
    # Metrics
    "pooled_nmse_percent",
    "nmse_percent",
    "directional_symmetry",
    "quartile_thresholds",
    # Simulation
    "Simulator",
    "SimulationResult",
    "MachineConfig",
    "baseline_config",
    "DVMPolicy",
    # Design space exploration
    "DesignSpace",
    "paper_design_space",
    "latin_hypercube",
    "l2_star_discrepancy",
    "SweepRunner",
    "SweepPlan",
    "DynamicsDataset",
    "PredictiveExplorer",
    "Constraint",
    "Objective",
    "register_reducer",
    "ActiveSearch",
    "ActiveSearchResult",
    "ActiveSearchSettings",
    "run_active_search",
    # Execution engine
    "SimJob",
    "ExecutionEngine",
    "LocalExecutor",
    "ParallelExecutor",
    "ResultCache",
    "create_engine",
    "ThermalModel",
    "DTMPolicy",
    # Workloads
    "BENCHMARK_NAMES",
    "get_benchmark",
    "list_benchmarks",
    "__version__",
]
