"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package (no PEP 517 editable
builds) can still ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
